"""Unit tests for the array-native protocol contract and batch dispatch path."""

import numpy as np
import pytest

from repro.network import graphs
from repro.network.batch import (
    STATUS_ELECTED,
    BatchProtocol,
    MessageBatch,
    ScalarAdapter,
)
from repro.network.engine import CongestViolation, SynchronousEngine
from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.util.rng import RandomSource


class _EchoNode(Node):
    """Round 0: send payload=uid on every port; round 1: record and halt."""

    def __init__(self, uid, degree, rng):
        super().__init__(uid, degree, rng)
        self.received = []

    def step(self, round_index, inbox):
        self.received.extend((port, m.sender, m.payload) for port, m in inbox)
        if round_index == 0:
            return [(p, Message("echo", payload=self.uid)) for p in range(self.degree)]
        self.halt()
        return []


def _run_echo(topology, mode, backend="fast"):
    rng = RandomSource(3)
    nodes = [
        _EchoNode(v, topology.degree(v), rng.spawn()) for v in range(topology.n)
    ]
    metrics = MetricsRecorder()
    program = ScalarAdapter(nodes) if mode == "batch" else nodes
    engine = SynchronousEngine(
        topology, program, metrics, label="echo", backend=backend
    )
    rounds = engine.run(max_rounds=5)
    return rounds, metrics.messages, [node.received for node in nodes]


class TestMessageBatch:
    def test_empty_has_no_rows(self):
        batch = MessageBatch.empty()
        assert len(batch) == 0
        assert batch.kinds is not None and batch.payloads is None
        assert len(MessageBatch.empty(object_mode=True).payloads) == 0

    def test_take_gathers_every_column(self):
        batch = MessageBatch(
            senders=[0, 1, 2],
            ports=[5, 6, 7],
            kinds=[1, 2, 3],
            values=[10, 20, 30],
            bits=[0, 8, 16],
            receivers=[3, 4, 5],
        )
        taken = batch.take(np.asarray([2, 0]))
        assert taken.senders.tolist() == [2, 0]
        assert taken.ports.tolist() == [7, 5]
        assert taken.kinds.tolist() == [3, 1]
        assert taken.values.tolist() == [30, 10]
        assert taken.bits.tolist() == [16, 0]
        assert taken.receivers.tolist() == [5, 3]

    def test_columns_coerced_to_int64(self):
        batch = MessageBatch(senders=[0], ports=[1], kinds=[2], values=[3])
        for column in (batch.senders, batch.ports, batch.kinds, batch.values):
            assert column.dtype == np.int64


class TestBatchProtocolBase:
    class _Silent(BatchProtocol):
        def step_batch(self, round_index, inbox):
            return None

    def test_state_views(self):
        program = self._Silent(4)
        assert program.alive_count() == 4
        program.force_halt(2)
        assert program.alive_count() == 3
        assert program.halted_mask().tolist() == [False, False, True, False]
        program.status_codes[1] = STATUS_ELECTED
        assert program.statuses()[1] is Status.ELECTED
        program.decisions[0] = 1
        assert program.decisions_dict() == {0: 1, 1: None, 2: None, 3: None}

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError, match="n >= 1"):
            self._Silent(0)

    def test_engine_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="batch program"):
            SynchronousEngine(
                graphs.cycle(4), self._Silent(3), MetricsRecorder()
            )


class TestScalarAdapter:
    @pytest.mark.parametrize(
        "build", [graphs.cycle, graphs.complete, graphs.star, graphs.wheel]
    )
    def test_adapter_matches_both_scalar_backends(self, build):
        topology = build(6)
        fast = _run_echo(topology, "scalar", "fast")
        reference = _run_echo(topology, "scalar", "reference")
        batch = _run_echo(topology, "batch")
        assert fast == reference == batch

    def test_adapter_syncs_status_and_decision(self):
        class _Decider(Node):
            def step(self, round_index, inbox):
                self.status = Status.ELECTED
                self.decision = 1
                self.halt()
                return []

        rng = RandomSource(0)
        nodes = [_Decider(v, 2, rng.spawn()) for v in range(3)]
        adapter = ScalarAdapter(nodes)
        engine = SynchronousEngine(graphs.cycle(3), adapter, MetricsRecorder())
        engine.run(max_rounds=2)
        assert adapter.statuses() == {v: Status.ELECTED for v in range(3)}
        assert adapter.decisions_dict() == {0: 1, 1: 1, 2: 1}

    def test_pre_halted_nodes_never_step(self):
        rng = RandomSource(0)
        nodes = [_EchoNode(v, 2, rng.spawn()) for v in range(4)]
        nodes[2].halted = True
        adapter = ScalarAdapter(nodes)
        engine = SynchronousEngine(graphs.cycle(4), adapter, MetricsRecorder())
        engine.run(max_rounds=4)
        assert nodes[2].received == []


class TestDeprecationShim:
    def test_nodes_keyword_warns(self):
        rng = RandomSource(0)
        nodes = [_EchoNode(v, 2, rng.spawn()) for v in range(3)]
        with pytest.warns(DeprecationWarning, match="registry"):
            engine = SynchronousEngine(
                graphs.cycle(3), metrics=MetricsRecorder(), nodes=nodes
            )
        assert engine.nodes is nodes

    def test_nodes_keyword_and_program_conflict(self):
        rng = RandomSource(0)
        nodes = [_EchoNode(v, 2, rng.spawn()) for v in range(3)]
        with pytest.raises(TypeError, match="not both"):
            SynchronousEngine(
                graphs.cycle(3), nodes, MetricsRecorder(), nodes=nodes
            )

    def test_missing_program_is_an_error(self):
        with pytest.raises(TypeError, match="node program"):
            SynchronousEngine(graphs.cycle(3), metrics=MetricsRecorder())

    def test_reference_backend_with_batch_program_warns(self):
        class _Silent(BatchProtocol):
            def step_batch(self, round_index, inbox):
                self.halted[:] = True
                return None

        engine = SynchronousEngine(
            graphs.cycle(3), _Silent(3), MetricsRecorder(), backend="reference"
        )
        with pytest.warns(RuntimeWarning, match="node_api='scalar'"):
            engine.run(max_rounds=2)


class _Planned(BatchProtocol):
    """Emits one fixed outbox at round 0 and halts at round 1."""

    def __init__(self, n, senders, ports, bits=None):
        super().__init__(n)
        self._outbox = MessageBatch(
            senders=senders,
            ports=ports,
            kinds=np.zeros(len(senders), dtype=np.int64),
            values=np.zeros(len(senders), dtype=np.int64),
            bits=bits,
        )
        self.seen = []

    def step_batch(self, round_index, inbox):
        self.seen.append(
            (inbox.receivers.tolist(), inbox.ports.tolist(), inbox.senders.tolist())
        )
        if round_index == 0:
            return self._outbox
        self.halted[:] = True
        return None


class TestBatchDispatchValidation:
    def test_canonical_order_violation_raises(self):
        program = _Planned(4, [2, 0], [0, 0])
        engine = SynchronousEngine(graphs.cycle(4), program, MetricsRecorder())
        with pytest.raises(ValueError, match="canonical sender order"):
            engine.run(max_rounds=2)

    def test_invalid_port_raises(self):
        program = _Planned(4, [0], [7])
        engine = SynchronousEngine(graphs.cycle(4), program, MetricsRecorder())
        with pytest.raises(ValueError, match="invalid"):
            engine.run(max_rounds=2)

    def test_congest_violation_raises(self):
        program = _Planned(4, [0, 0], [1, 1])
        engine = SynchronousEngine(graphs.cycle(4), program, MetricsRecorder())
        with pytest.raises(CongestViolation):
            engine.run(max_rounds=2)

    def test_bits_column_charges_multi_unit_messages(self):
        n = 8
        bits = 2 * congest_capacity_bits(n)
        program = _Planned(
            n, [0, 1], [0, 0], bits=np.asarray([bits, 0], dtype=np.int64)
        )
        metrics = MetricsRecorder()
        engine = SynchronousEngine(graphs.cycle(n), program, metrics)
        engine.run(max_rounds=3)
        assert metrics.messages == 3  # one 2-unit message + one 1-unit

    def test_delivery_is_grouped_and_sorted_by_receiver(self):
        # Node 0 and 2 of a 4-cycle both send both ways; receivers see
        # arrival rows sorted by receiver with canonical in-group order.
        program = _Planned(4, [0, 0, 2, 2], [0, 1, 0, 1])
        engine = SynchronousEngine(graphs.cycle(4), program, MetricsRecorder())
        engine.run(max_rounds=3)
        receivers, _, senders = program.seen[1]
        assert receivers == sorted(receivers)
        assert sorted(zip(receivers, senders)) == list(zip(receivers, senders))


class TestHaltSemantics:
    def test_halted_receiver_drops_inbound_in_all_three_paths(self):
        # Node 1 halts at round 0 *after* sending; node 0 keeps sending to
        # node 1, whose inbound messages must count as dropped_protocol
        # identically on every dispatch path.
        class _Stubborn(Node):
            def step(self, round_index, inbox):
                if self.uid == 1:
                    self.halt()
                    return [(0, Message("bye"))]
                if round_index < 3:
                    return [(0, Message("ping"))]
                self.halt()
                return []

        def run(mode, backend="fast"):
            rng = RandomSource(0)
            topology = graphs.path(2)
            nodes = [_Stubborn(v, 1, rng.spawn()) for v in range(2)]
            program = ScalarAdapter(nodes) if mode == "batch" else nodes
            metrics = MetricsRecorder()
            engine = SynchronousEngine(
                topology, program, metrics, backend=backend
            )
            engine.run(max_rounds=10)
            return metrics.messages, metrics.rounds, engine.undelivered_detail()

        fast = run("scalar", "fast")
        reference = run("scalar", "reference")
        batch = run("batch")
        assert fast == reference == batch
        assert fast[2]["dropped_protocol"] > 0
