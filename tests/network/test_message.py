"""Tests for repro.network.message (CONGEST bandwidth accounting)."""

import math

import pytest

from repro.network.message import (
    CONGEST_FACTOR,
    Message,
    congest_capacity_bits,
    messages_for_bits,
)


class TestCapacity:
    def test_capacity_scales_with_log_n(self):
        assert congest_capacity_bits(1024) == CONGEST_FACTOR * 10

    def test_capacity_non_power_of_two(self):
        assert congest_capacity_bits(1000) == CONGEST_FACTOR * 10  # ceil(log2 1000)=10

    def test_capacity_rejects_tiny_networks(self):
        with pytest.raises(ValueError):
            congest_capacity_bits(1)

    def test_custom_factor(self):
        assert congest_capacity_bits(256, factor=1) == 8


class TestMessagesForBits:
    def test_zero_bits_zero_messages(self):
        assert messages_for_bits(0, 64) == 0

    def test_small_payload_one_message(self):
        assert messages_for_bits(5, 1024) == 1

    def test_exact_capacity_one_message(self):
        cap = congest_capacity_bits(64)
        assert messages_for_bits(cap, 64) == 1

    def test_splitting(self):
        cap = congest_capacity_bits(64)
        assert messages_for_bits(cap + 1, 64) == 2
        assert messages_for_bits(10 * cap, 64) == 10

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            messages_for_bits(-1, 64)

    def test_tau_squared_blowup_shape(self):
        """The QuantumRWLE blow-up: τ·log n bits over τ hops ≈ τ²/factor msgs."""
        n, tau = 1024, 200
        bits = tau * math.ceil(math.log2(n))
        per_hop = messages_for_bits(bits, n)
        total = per_hop * tau
        assert total == math.ceil(tau / CONGEST_FACTOR) * tau


class TestMessage:
    def test_default_is_single_unit(self):
        assert Message("rank", payload=42).message_units(1024) == 1

    def test_large_payload_counts_multiple_units(self):
        cap = congest_capacity_bits(64)
        message = Message("walk", bits=3 * cap)
        assert message.message_units(64) == 3

    def test_metadata_fields(self):
        message = Message("probe", payload=(1, 2), bits=8)
        assert message.kind == "probe"
        assert message.sender == -1  # unset until the engine stamps it
        assert message.meta == {}
