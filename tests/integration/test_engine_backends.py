"""End-to-end backend invariance: scenario aggregates don't depend on the
engine backend (fast vs reference) — the PR's acceptance criterion for
E1 (complete-graph LE), E4 (diameter-2 LE), and E7 (star search)."""

import pytest

from repro.runtime import experiment_pair, run_scenario

#: Small grids keeping the double (quantum + classical) runs test-speed.
_SMALL_GRIDS = {
    "E1": ((64, 128), 2),
    "E4": ((32, 48), 2),
    "E7": ((64, 128), 2),
}


@pytest.mark.parametrize("experiment", sorted(_SMALL_GRIDS))
def test_aggregates_are_backend_invariant(monkeypatch, experiment):
    quantum, classical = experiment_pair(experiment)
    # Pin scalar dispatch: the point here is fast-vs-reference backend
    # invariance, and batch-capable protocols would otherwise resolve to
    # the (backend-independent) batch path under both env settings.
    # Batch-vs-scalar invariance has its own parity property suite.
    classical = classical.with_overrides(node_api="scalar")
    quantum = quantum.with_overrides(node_api="scalar")
    sizes, trials = _SMALL_GRIDS[experiment]
    per_backend = {}
    for backend in ("fast", "reference"):
        monkeypatch.setenv("REPRO_ENGINE", backend)
        per_backend[backend] = (
            run_scenario(quantum, jobs=1, sizes=sizes, trials=trials).trial_sets,
            run_scenario(classical, jobs=1, sizes=sizes, trials=trials).trial_sets,
        )
    assert per_backend["fast"] == per_backend["reference"]
