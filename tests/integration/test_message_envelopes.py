"""Message-envelope integration tests: measured costs track the theorems.

Each test measures a protocol on a small size grid and checks the *growth*
against the paper's envelope (with polylog corrections divided out using the
known schedule structure).  Exact exponent recovery is the benchmarks' job;
these tests pin down the coarse shape so regressions in the accounting are
caught by `pytest tests/`.
"""

import math

import pytest

from repro import (
    RandomSource,
    classical_le_complete,
    quantum_le_complete,
    quantum_rwle,
)
from repro.analysis.fitting import fit_power_law
from repro.analysis.scaling import measure_scaling
from repro.network import graphs


class TestCompleteGraphEnvelope:
    def test_quantum_exponent_near_one_third(self):
        """Per-candidate messages ≈ k + √(n/k)·2·attempts: with constant α
        and k = n^{1/3} this is Θ(n^{1/3})."""

        def runner(n, rng):
            result = quantum_le_complete(n, rng, alpha=1 / 8)
            per_candidate = result.messages / max(1, result.meta["candidates"])
            return round(per_candidate), result.rounds, result.success, {}

        series = measure_scaling(
            "qle", runner, [512, 2048, 8192, 32768], trials=3, seed=0
        )
        fit = series.fit()
        assert fit.exponent == pytest.approx(1 / 3, abs=0.08)

    def test_classical_exponent_near_one_half(self):
        def runner(n, rng):
            result = classical_le_complete(n, rng)
            per_candidate = result.messages / max(1, result.meta["candidates"])
            return round(per_candidate), result.rounds, result.success, {}

        series = measure_scaling(
            "kpp", runner, [512, 2048, 8192, 32768], trials=3, seed=1
        )
        # messages/candidate ∝ √(n ln n): divide one half-log out via polylog.
        fit = series.fit(polylog_power=0.5)
        assert fit.exponent == pytest.approx(0.5, abs=0.08)

    def test_trade_off_monotonicity(self):
        """Theorem 5.2: rounds fall and referee messages rise as k grows."""
        n = 4096
        rounds, referee_msgs = [], []
        for k in (4, 16, 64):
            result = quantum_le_complete(n, RandomSource(3), k=k, alpha=1 / 8)
            rounds.append(result.rounds)
            referee_msgs.append(
                result.metrics.ledger.messages_by_label()["quantum-le.referees"]
            )
        assert rounds[0] > rounds[1] > rounds[2]
        assert referee_msgs[0] < referee_msgs[1] < referee_msgs[2]


class TestMixingEnvelope:
    def test_tau_dependence_dominates_on_slow_graphs(self):
        """At fixed n, larger τ costs more messages (τk + τ²√(n/k))."""
        topology = graphs.hypercube(6)
        costs = []
        for tau in (4, 8, 16):
            result = quantum_rwle(
                topology, RandomSource(4), tau=tau, k=8, alpha=1 / 8
            )
            costs.append(result.messages)
        assert costs[0] < costs[1] < costs[2]

    def test_optimized_k_beats_extreme_k(self):
        """Cor 5.5's k = τ^{2/3} n^{1/3} should beat both extremes."""
        topology = graphs.hypercube(7)
        n, tau = 128, 10
        k_opt = max(1, round(tau ** (2 / 3) * n ** (1 / 3)))
        cost_opt = quantum_rwle(
            topology, RandomSource(5), tau=tau, k=k_opt, alpha=1 / 8
        ).messages
        cost_low = quantum_rwle(
            topology, RandomSource(5), tau=tau, k=1, alpha=1 / 8
        ).messages
        cost_high = quantum_rwle(
            topology, RandomSource(5), tau=tau, k=n - 1, alpha=1 / 8
        ).messages
        assert cost_opt <= cost_low
        assert cost_opt <= cost_high


class TestGeneralGraphEnvelope:
    def test_sqrt_mn_vs_m_growth_with_density(self):
        """As density grows at fixed n, quantum Õ(√(mn)) grows like √m while
        classical Θ(m) grows like m."""
        from repro.classical.leader_election.general_ghs import classical_le_general
        from repro.core.leader_election.general import quantum_general_le

        n = 96
        quantum_costs, classical_costs, edge_counts = [], [], []
        for p in (0.1, 0.4, 0.9):
            rng = RandomSource(int(p * 100))
            topology = graphs.erdos_renyi(n, p, rng.spawn())
            edge_counts.append(topology.edge_count())
            quantum = quantum_general_le(topology, rng.spawn(), alpha=1 / 8)
            classical = classical_le_general(topology, rng.spawn())
            # Normalize per phase: denser graphs merge in fewer phases, which
            # would otherwise confound the density dependence.
            quantum_costs.append(quantum.messages / quantum.meta["phases"])
            classical_costs.append(classical.messages / classical.meta["phases"])
        m_growth = edge_counts[-1] / edge_counts[0]
        q_growth = quantum_costs[-1] / quantum_costs[0]
        c_growth = classical_costs[-1] / classical_costs[0]
        assert q_growth < c_growth
        assert q_growth < math.sqrt(m_growth) * 2.0
        assert c_growth > m_growth * 0.6  # classical per phase tracks Θ(m)
