"""Statistical contract tests: measured frequencies vs theorem guarantees.

Each test runs a subroutine or protocol many times and compares the observed
success/error frequencies against the bound the corresponding theorem
promises.  Tolerances are 3-4σ of the binomial sampling noise, so failures
indicate real regressions, not unlucky seeds.
"""

import math

from repro import RandomSource, quantum_agreement, quantum_le_complete
from repro.core.counting import approx_count
from repro.core.grover import distributed_grover_search
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import (
    bbht_average_success,
    worst_case_iterations,
)


def _oracle(n, marked):
    return SetOracle(
        domain=range(n),
        marked=marked,
        charge_checking=uniform_charge(2, 2, "stat.checking"),
    )


class TestTheorem41Contract:
    def test_failure_rate_below_alpha_exactly_at_promise(self):
        """ε_f = ε exactly (the hardest admissible instance)."""
        alpha = 0.1
        trials = 400
        failures = sum(
            not distributed_grover_search(
                _oracle(64, {0}), 1 / 64, alpha, MetricsRecorder(), RandomSource(s)
            ).succeeded
            for s in range(trials)
        )
        # True failure ≤ (1 − p̄)^attempts with p̄ = BBHT average ≥ 1/4.
        assert failures / trials <= alpha

    def test_expected_messages_track_bbht_attempt_count(self):
        """E[attempts until success] = 1/p̄, so mean messages over many runs
        should sit near (1/p̄)·E[per-attempt cost]."""
        epsilon = 1 / 64
        cap = worst_case_iterations(epsilon)
        p_bar = bbht_average_success(cap, epsilon)
        trials = 500
        total = 0
        for s in range(trials):
            metrics = MetricsRecorder()
            distributed_grover_search(
                _oracle(64, {0}), epsilon, 0.01, metrics, RandomSource(s)
            )
            total += metrics.messages
        mean = total / trials
        # Per attempt: E[j] ≈ (cap−1)/2 iterations × 2 checks × 2 msgs + verify.
        per_attempt = ((cap - 1) / 2) * 4 + 2
        predicted = per_attempt / p_bar
        assert 0.5 * predicted < mean < 2.0 * predicted


class TestCorollary43Contract:
    def test_error_within_budget_at_rate_one_minus_alpha(self):
        alpha = 0.1
        accuracy = 0.05
        trials = 150
        violations = 0
        for s in range(trials):
            oracle = _oracle(200, set(range(70)))
            result = approx_count(
                oracle, accuracy, alpha, MetricsRecorder(), RandomSource(s)
            )
            violations += abs(result.estimate - 70) >= accuracy * 200
        assert violations / trials <= alpha + 0.05


class TestTheorem52Contract:
    def test_whp_success_at_paper_alpha(self):
        """With α = 1/n² the failure rate must be ≪ 1/√n-ish at n=128."""
        trials = 60
        failures = sum(
            not quantum_le_complete(128, RandomSource(s)).success
            for s in range(trials)
        )
        assert failures <= 1

    def test_leader_distribution_uniform_over_candidates(self):
        """The winner is the max-rank candidate; ranks are i.i.d., so no node
        should be systematically favoured."""
        wins: dict[int, int] = {}
        for s in range(150):
            result = quantum_le_complete(32, RandomSource(s))
            if result.leader is not None:
                wins[result.leader] = wins.get(result.leader, 0) + 1
        # No node should win a large constant fraction of all runs.
        assert max(wins.values()) <= 150 * 0.15


class TestTheorem67Contract:
    def test_agreement_validity_never_violated(self):
        """Agreement may stall (prob ≤ 1/n) but must never decide a value
        nobody held, across many seeds and input profiles."""
        for ones_fraction in (0.0, 0.1, 0.5, 0.9, 1.0):
            for s in range(20):
                n = 96
                ones = int(ones_fraction * n)
                inputs = [1] * ones + [0] * (n - ones)
                result = quantum_agreement(inputs, RandomSource(1000 * s + ones))
                decided = {result.decisions[v] for v in result.decided_nodes}
                if decided:
                    assert len(decided) == 1
                    assert decided.pop() in set(inputs)

    def test_expected_iterations_short(self):
        """Lemma 6.2: each iteration ends everything w.p. ≥ 1 − 4ε, so the
        average iteration count stays near 1."""
        total = 0
        trials = 40
        for s in range(trials):
            inputs = [1] * 30 + [0] * 98
            result = quantum_agreement(inputs, RandomSource(s))
            total += result.meta["iterations"]
        assert total / trials < 2.0
