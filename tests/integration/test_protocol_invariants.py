"""Cross-protocol invariants: every protocol, one shared contract.

Whatever the topology or algorithm, a run must leave a coherent artifact:
complete status maps, non-negative labelled costs, ledger totals equal to
counter totals, and meta fields the benchmarks rely on.
"""

import pytest

from repro import (
    QWLEParameters,
    RandomSource,
    classical_agreement_shared,
    classical_le_complete,
    classical_le_diameter2,
    classical_le_general,
    classical_le_mixing,
    classical_mst,
    quantum_agreement,
    quantum_general_le,
    quantum_le_complete,
    quantum_mst,
    quantum_qwle,
    quantum_rwle,
)
from repro.network import graphs
from repro.network.node import Status

N = 48


def _weights(topology, rng):
    return {e: float(rng.uniform_int(1, 10**6)) for e in topology.edges()}


def _le_runs():
    rng = RandomSource(321)
    d2 = graphs.diameter_two_gnp(N, rng.spawn())
    er = graphs.erdos_renyi(N, 0.2, rng.spawn())
    cube = graphs.hypercube(6)
    return [
        ("quantum-complete", quantum_le_complete(N, rng.spawn())),
        ("quantum-mixing", quantum_rwle(cube, rng.spawn(), tau=12)),
        (
            "quantum-diameter2",
            quantum_qwle(d2, rng.spawn(), QWLEParameters(alpha=1 / 8, inner_alpha=1 / 8)),
        ),
        ("quantum-general", quantum_general_le(er, rng.spawn(), alpha=1 / 8)),
        ("classical-complete", classical_le_complete(N, rng.spawn())),
        ("classical-mixing", classical_le_mixing(cube, rng.spawn(), tau=12)),
        ("classical-diameter2", classical_le_diameter2(d2, rng.spawn())),
        ("classical-general", classical_le_general(er, rng.spawn())),
    ]


@pytest.fixture(scope="module")
def le_runs():
    return _le_runs()


class TestLeaderElectionInvariants:
    def test_status_maps_complete(self, le_runs):
        for label, result in le_runs:
            assert set(result.statuses) == set(range(result.n)), label
            assert all(
                isinstance(s, Status) for s in result.statuses.values()
            ), label

    def test_at_most_modest_leader_count(self, le_runs):
        for label, result in le_runs:
            assert len(result.elected) <= max(1, result.meta.get("candidates", 1)), label

    def test_ledger_totals_consistent(self, le_runs):
        for label, result in le_runs:
            assert result.metrics.messages == result.metrics.ledger.total_messages, label
            assert result.metrics.rounds == result.metrics.ledger.total_rounds, label
            assert result.messages >= 0 and result.rounds >= 0, label

    def test_every_charge_labelled(self, le_runs):
        for label, result in le_runs:
            for entry in result.metrics.ledger.entries:
                assert entry.label, label
                assert entry.messages >= 0 and entry.rounds >= 0, label

    def test_nontrivial_cost_when_candidates_exist(self, le_runs):
        for label, result in le_runs:
            if result.meta.get("candidates", 1) > 0:
                assert result.messages > 0, label


class TestAgreementInvariants:
    def test_decision_map_complete_and_valid(self):
        rng = RandomSource(99)
        inputs = [1] * 12 + [0] * (N - 12)
        for label, result in [
            ("quantum", quantum_agreement(inputs, rng.spawn())),
            ("classical", classical_agreement_shared(inputs, rng.spawn())),
        ]:
            assert set(result.decisions) == set(range(N)), label
            for value in result.decisions.values():
                assert value in (None, 0, 1), label
            assert result.metrics.messages == result.metrics.ledger.total_messages


class TestMSTInvariants:
    def test_both_sides_agree_and_account(self):
        rng = RandomSource(55)
        topology = graphs.erdos_renyi(N, 0.25, rng.spawn())
        weights = _weights(topology, rng.spawn())
        quantum = quantum_mst(topology, weights, rng.spawn(), alpha=1 / 8)
        classical = classical_mst(topology, weights, rng.spawn())
        assert quantum.total_weight == pytest.approx(classical.total_weight)
        for result in (quantum, classical):
            assert result.is_spanning
            assert result.metrics.messages == result.metrics.ledger.total_messages
            for u, v in result.edges:
                assert topology.has_edge(u, v)
