"""Failure-injection integration tests.

The paper's protocols fail with probability O(1/n); these tests force the
failure modes deterministically and verify the library *detects and reports*
them faithfully rather than masking them.
"""

from repro import (
    FaultInjector,
    RandomSource,
    quantum_agreement,
    quantum_le_complete,
    quantum_qwle,
    quantum_rwle,
)
from repro.core.leader_election import QWLEParameters
from repro.network import graphs
from repro.network.node import Status


class TestLeaderElectionFailureModes:
    def test_no_candidates_reported_not_masked(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = quantum_le_complete(64, RandomSource(0), faults=faults)
        assert not result.success
        assert all(s is Status.NON_ELECTED for s in result.statuses.values())

    def test_rank_tie_produces_detectable_dual_leaders(self):
        faults = FaultInjector()
        faults.force("candidates.force_tie")
        result = quantum_le_complete(64, RandomSource(1), faults=faults)
        assert len(result.elected) == 2
        assert not result.success
        assert not result.meta["unique_ranks"]

    def test_single_grover_failure_single_extra_leader(self):
        """Killing exactly one candidate's full search → ≤ one extra leader."""
        from repro.quantum.amplitude import attempts_for_confidence

        faults = FaultInjector()
        # Arm exactly one search's worth of attempts: the first candidate's
        # whole schedule fails, every later search runs clean.
        faults.force(
            "grover.false_negative", times=attempts_for_confidence(1.0 / 64**2)
        )
        result = quantum_le_complete(64, RandomSource(2), faults=faults)
        assert 1 <= len(result.elected) <= 2

    def test_rwle_walk_failures(self):
        faults = FaultInjector()
        faults.force_always("grover.false_negative")
        result = quantum_rwle(
            graphs.hypercube(5), RandomSource(3), tau=8, faults=faults
        )
        # all candidates fail to find higher ranks → all elected
        assert len(result.elected) == result.meta["candidates"]
        assert not result.success or result.meta["candidates"] == 1

    def test_qwle_walk_failures_leave_candidates(self):
        faults = FaultInjector()
        faults.force_always("walk.false_negative")
        rng = RandomSource(4)
        topology = graphs.diameter_two_gnp(32, rng.spawn())
        params = QWLEParameters(alpha=1 / 16, inner_alpha=1 / 16, outer_iterations=20)
        result = quantum_qwle(topology, rng.spawn(), params, faults=faults)
        assert len(result.elected) == result.meta["candidates"]


class TestAgreementFailureModes:
    def test_no_candidates_no_decision(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = quantum_agreement(
            [1] * 20 + [0] * 44, RandomSource(5), faults=faults
        )
        assert result.decided_nodes == []
        assert not result.success

    def test_detection_failures_exhaust_iterations_gracefully(self):
        faults = FaultInjector()
        faults.force_always("agreement.detect.false_negative")
        result = quantum_agreement(
            [1] * 20 + [0] * 44, RandomSource(6), faults=faults
        )
        # Candidates that decide do so consistently; stragglers may stay ⊥.
        assert result.meta["iterations"] <= result.meta["iteration_budget"]
        if result.decided_nodes:
            values = {result.decisions[v] for v in result.decided_nodes}
            assert len(values) == 1


class TestFaultAccountingUnaffected:
    def test_rounds_identical_and_failures_cost_more_messages(self):
        """Faults flip outcomes, not the synchronized round schedule; forced
        failures keep nodes searching, so messages can only go up."""
        faults = FaultInjector()
        faults.force_always("grover.false_negative")
        clean = quantum_le_complete(64, RandomSource(7))
        faulty = quantum_le_complete(64, RandomSource(7), faults=faults)
        assert clean.rounds == faulty.rounds
        assert faulty.messages >= clean.messages
