"""Seed-robustness: headline exponents must not depend on the master seed.

Guards the E1 result (the paper's flagship separation) against seed
cherry-picking: three disjoint seed families must all produce quantum
exponents near 1/3 and classical ones near 1/2.
"""

import pytest

from repro import classical_le_complete, quantum_le_complete
from repro.analysis.scaling import measure_scaling

SIZES = [1024, 4096, 16384]
TRIALS = 3


def _quantum(n, rng):
    result = quantum_le_complete(n, rng)
    return (
        round(result.messages / max(1, result.meta["candidates"])),
        result.rounds,
        result.success,
        {},
    )


def _classical(n, rng):
    result = classical_le_complete(n, rng)
    return (
        round(result.messages / max(1, result.meta["candidates"])),
        result.rounds,
        result.success,
        {},
    )


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [11, 2024, 987654])
    def test_quantum_exponent_stable(self, seed):
        series = measure_scaling("q", _quantum, SIZES, TRIALS, seed=seed)
        assert series.fit().exponent == pytest.approx(1 / 3, abs=0.12)
        assert series.overall_success_rate() > 0.9

    @pytest.mark.parametrize("seed", [13, 2025, 192837])
    def test_classical_exponent_stable(self, seed):
        series = measure_scaling("c", _classical, SIZES, TRIALS, seed=seed)
        assert series.fit(polylog_power=0.5).exponent == pytest.approx(
            0.5, abs=0.1
        )

    def test_advantage_direction_stable(self):
        """Quantum per-candidate cost is below classical at n=16384 for every
        seed family."""
        for seed in (5, 50, 500):
            quantum = measure_scaling("q", _quantum, [16384], TRIALS, seed=seed)
            classical = measure_scaling(
                "c", _classical, [16384], TRIALS, seed=seed + 1
            )
            assert quantum.messages[0] < classical.messages[0]
