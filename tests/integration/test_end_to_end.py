"""End-to-end integration: every protocol × several topologies × seeds.

These are the "does the whole stack hold together" tests: quantum protocol,
classical baseline, shared candidate machinery, metrics, and results all
exercised through the public API exactly as the examples and benchmarks use
them.
"""

import pytest

from repro import (
    RandomSource,
    classical_agreement_shared,
    classical_le_complete,
    classical_le_diameter2,
    classical_le_general,
    classical_le_mixing,
    quantum_agreement,
    quantum_general_le,
    quantum_le_complete,
    quantum_qwle,
    quantum_rwle,
)
from repro.core.leader_election import QWLEParameters
from repro.network import graphs


class TestQuantumVsClassicalSameProblem:
    """Both sides must solve the same instance; quantum must not require
    anything classical does not."""

    def test_complete_graph_pair(self):
        for seed in range(5):
            q = quantum_le_complete(256, RandomSource(seed))
            c = classical_le_complete(256, RandomSource(seed + 1000))
            assert q.success and c.success

    def test_mixing_pair_on_hypercube(self):
        topology = graphs.hypercube(6)
        for seed in range(5):
            q = quantum_rwle(topology, RandomSource(seed), tau=15)
            c = classical_le_mixing(topology, RandomSource(seed + 1000), tau=15)
            assert q.success and c.success

    def test_diameter2_pair(self):
        rng = RandomSource(77)
        topology = graphs.diameter_two_gnp(48, rng.spawn())
        q = quantum_qwle(topology, rng.spawn())
        c = classical_le_diameter2(topology, rng.spawn())
        assert q.success and c.success

    def test_general_pair(self):
        rng = RandomSource(78)
        topology = graphs.erdos_renyi(48, 0.2, rng.spawn())
        q = quantum_general_le(topology, rng.spawn())
        c = classical_le_general(topology, rng.spawn())
        assert q.explicit_success and c.explicit_success

    def test_agreement_pair(self):
        inputs = [1] * 30 + [0] * 98
        for seed in range(5):
            q = quantum_agreement(inputs, RandomSource(seed))
            c = classical_agreement_shared(inputs, RandomSource(seed + 1000))
            assert q.success and c.success


class TestMessageAdvantageAtScale:
    """'Who wins' checks at laptop scale with α matched across sides."""

    def test_complete_graph_quantum_beats_classical(self):
        """Cor 5.3 vs Θ̃(√n): at n = 16384 with matched constant α the
        per-candidate quantum cost must be lower."""
        n = 16384
        q = quantum_le_complete(n, RandomSource(0), alpha=1 / 8)
        c = classical_le_complete(n, RandomSource(1))
        q_per = q.messages / max(1, q.meta["candidates"])
        c_per = c.messages / max(1, c.meta["candidates"])
        assert q_per < c_per

    def test_exponent_gap_visible_on_grid(self):
        """Quantum per-candidate message growth is visibly slower."""
        sizes = [1024, 4096, 16384]
        q_costs, c_costs = [], []
        for n in sizes:
            q = quantum_le_complete(n, RandomSource(2), alpha=1 / 8)
            c = classical_le_complete(n, RandomSource(3))
            q_costs.append(q.messages / max(1, q.meta["candidates"]))
            c_costs.append(c.messages / max(1, c.meta["candidates"]))
        q_growth = q_costs[-1] / q_costs[0]
        c_growth = c_costs[-1] / c_costs[0]
        # n^{1/3} growth ≈ 2.5× vs n^{1/2} growth ≈ 4× over 16×
        assert q_growth < c_growth


class TestCrossProtocolConsistency:
    def test_all_leader_elections_agree_on_result_shape(self):
        rng = RandomSource(5)
        topology = graphs.diameter_two_gnp(32, rng.spawn())
        results = [
            quantum_le_complete(32, rng.spawn()),
            quantum_qwle(topology, rng.spawn(), QWLEParameters(outer_iterations=80)),
            quantum_general_le(topology, rng.spawn()),
        ]
        for result in results:
            assert result.n == 32
            assert set(result.statuses) == set(range(32))
            assert result.messages > 0
            assert result.rounds > 0

    def test_metrics_ledger_totals_consistent_everywhere(self):
        rng = RandomSource(6)
        result = quantum_le_complete(128, rng)
        assert result.metrics.messages == result.metrics.ledger.total_messages
        assert result.metrics.rounds == result.metrics.ledger.total_rounds

    def test_reproducibility_of_full_protocol_runs(self):
        a = quantum_le_complete(128, RandomSource(9))
        b = quantum_le_complete(128, RandomSource(9))
        assert a.leader == b.leader
        assert a.messages == b.messages
        assert a.statuses == b.statuses
