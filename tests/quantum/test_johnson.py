"""Tests for repro.quantum.johnson."""

import math

import pytest

from repro.quantum.johnson import JohnsonGraph
from repro.util.rng import RandomSource


@pytest.fixture
def rng():
    return RandomSource(31)


class TestStructure:
    def test_degree(self):
        assert JohnsonGraph(10, 3).degree == 21

    def test_vertex_count(self):
        assert JohnsonGraph(10, 3).vertex_count() == math.comb(10, 3)

    def test_spectral_gap_formula(self):
        j = JohnsonGraph(20, 5)
        assert j.spectral_gap() == pytest.approx(20 / (5 * 15))

    def test_spectral_gap_theta_one_over_k(self):
        """δ ≈ 1/k for k = o(n) — the value Theorem 5.6 uses."""
        j = JohnsonGraph(1000, 10)
        assert j.spectral_gap() == pytest.approx(1 / 10, rel=0.02)

    def test_adjacency(self):
        j = JohnsonGraph(6, 3)
        assert j.are_adjacent(frozenset({0, 1, 2}), frozenset({0, 1, 3}))
        assert not j.are_adjacent(frozenset({0, 1, 2}), frozenset({0, 4, 5}))
        assert not j.are_adjacent(frozenset({0, 1, 2}), frozenset({0, 1, 2}))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            JohnsonGraph(1, 1)
        with pytest.raises(ValueError):
            JohnsonGraph(5, 5)
        with pytest.raises(ValueError):
            JohnsonGraph(5, 0)


class TestSampling:
    def test_random_vertex_size_and_range(self, rng):
        j = JohnsonGraph(12, 4)
        for _ in range(50):
            vertex = j.random_vertex(rng)
            assert len(vertex) == 4
            assert all(0 <= i < 12 for i in vertex)

    def test_random_neighbor_is_adjacent(self, rng):
        j = JohnsonGraph(9, 3)
        vertex = j.random_vertex(rng)
        for _ in range(30):
            neighbour, removed, added = j.random_neighbor(vertex, rng)
            assert j.are_adjacent(vertex, neighbour)
            assert removed in vertex and added not in vertex
            vertex = neighbour

    def test_validates_vertex_shape(self, rng):
        j = JohnsonGraph(6, 2)
        with pytest.raises(ValueError):
            j.random_neighbor(frozenset({0, 1, 2}), rng)
        with pytest.raises(ValueError):
            j.are_adjacent(frozenset({0, 9}), frozenset({0, 1}))


class TestHittingFraction:
    def test_single_good_is_k_over_n(self):
        """g = 1 gives exactly k/n — Algorithm 3's ε = k/deg(v)."""
        j = JohnsonGraph(30, 6)
        assert j.hitting_fraction(1) == pytest.approx(6 / 30)

    def test_zero_good_zero(self):
        assert JohnsonGraph(10, 3).hitting_fraction(0) == 0.0

    def test_all_good_one(self):
        assert JohnsonGraph(10, 3).hitting_fraction(10) == pytest.approx(1.0)

    def test_pigeonhole_forces_hit(self):
        """When n − g < k every subset must intersect the good set."""
        assert JohnsonGraph(10, 4).hitting_fraction(7) == 1.0

    def test_matches_exact_binomial_formula(self):
        j = JohnsonGraph(15, 4)
        for g in range(0, 12):
            exact = 1.0 - math.comb(15 - g, 4) / math.comb(15, 4)
            assert j.hitting_fraction(g) == pytest.approx(exact, rel=1e-12)

    def test_monotone_in_good_count(self):
        j = JohnsonGraph(25, 5)
        values = [j.hitting_fraction(g) for g in range(26)]
        assert values == sorted(values)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            JohnsonGraph(10, 3).hitting_fraction(11)


class TestHittingSubsetSampling:
    def test_samples_intersect_good_set(self, rng):
        j = JohnsonGraph(20, 4)
        good = {2, 17}
        for _ in range(40):
            subset = j.sample_hitting_subset(good, rng)
            assert subset & good
            assert len(subset) == 4

    def test_exact_conditional_fallback(self, rng):
        """Force the fallback path with zero rejection budget."""
        j = JohnsonGraph(50, 3)
        good = {7}
        for _ in range(30):
            subset = j.sample_hitting_subset(good, rng, max_rejections=0)
            assert 7 in subset
            assert len(subset) == 3

    def test_rejects_empty_good_set(self, rng):
        with pytest.raises(ValueError):
            JohnsonGraph(6, 2).sample_hitting_subset(set(), rng)

    def test_conditional_distribution_roughly_uniform(self, rng):
        """Frequency of a fixed non-good element should match theory."""
        j = JohnsonGraph(8, 3)
        good = {0}
        count_with_1 = sum(
            1 in j.sample_hitting_subset(good, rng) for _ in range(3000)
        )
        # P[1 ∈ W | 0 ∈ W-hitting] = C(6,1)/C(7,2) = 6/21 ≈ 0.2857 (0 forced) —
        # all hitting subsets contain 0 here, remaining 2 slots among 7.
        assert abs(count_with_1 / 3000 - 2 / 7) < 0.04
