"""Tests for repro.quantum.walk_model (MNRS outcome model)."""

import pytest

from repro.quantum.walk_model import (
    sample_walk_attempt,
    walk_attempt_success_probability,
)
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestSuccessProbability:
    def test_zero_marked_measure_is_zero(self):
        assert walk_attempt_success_probability(0.0, 0.01) == 0.0

    def test_promise_met_gives_constant(self):
        """ε_f ≥ ε ⇒ per-attempt success ≥ 1/4 (the MNRS constant we model)."""
        for eps in (0.001, 0.01, 0.1):
            for factor in (1.0, 2.0, 10.0):
                p = walk_attempt_success_probability(min(1.0, eps * factor), eps)
                assert p >= 0.25 - 1e-9

    def test_below_promise_degrades_gracefully(self):
        eps = 0.01
        p_low = walk_attempt_success_probability(eps / 100, eps)
        p_met = walk_attempt_success_probability(eps, eps)
        assert 0 < p_low < p_met

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            walk_attempt_success_probability(1.5, 0.1)


class TestSampling:
    def test_never_succeeds_without_marked_states(self):
        rng = RandomSource(0)
        assert not any(sample_walk_attempt(0.0, 0.05, rng) for _ in range(100))

    def test_rate_matches_model(self):
        rng = RandomSource(1)
        eps_f, eps = 0.02, 0.02
        expected = walk_attempt_success_probability(eps_f, eps)
        trials = 4000
        hits = sum(sample_walk_attempt(eps_f, eps, rng) for _ in range(trials))
        assert abs(hits / trials - expected) < 0.03

    def test_fault_injection(self):
        rng = RandomSource(2)
        faults = FaultInjector()
        faults.force("walk.false_negative", times=1)
        outcomes = [
            sample_walk_attempt(1.0, 1.0, rng, faults=faults) for _ in range(3)
        ]
        assert outcomes[0] is False  # forced
        assert all(outcomes[1:])  # ε_f = 1 afterwards succeeds surely
