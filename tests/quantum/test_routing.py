"""Tests for the quantum routing model (Appendix A)."""

import math

import numpy as np
import pytest

from repro.network import graphs
from repro.quantum.routing import VACUUM, QuantumRoutingNetwork
from repro.util.rng import RandomSource


def _star_network(leaves: int = 3, alphabet: int = 1) -> QuantumRoutingNetwork:
    network = QuantumRoutingNetwork(graphs.star(leaves + 1), alphabet_size=alphabet)
    network.allocate_local(0, "ctl", max(leaves, 2))
    network.build()
    return network


class TestConstruction:
    def test_registers_start_in_vacuum(self):
        network = _star_network(2)
        for u, v in network.topology.edges():
            assert network.state.marginal([network.emission(u, v)])[VACUUM] == (
                pytest.approx(1.0)
            )

    def test_cannot_allocate_after_build(self):
        network = _star_network(2)
        with pytest.raises(RuntimeError):
            network.allocate_local(1, "x", 2)

    def test_state_requires_build(self):
        network = QuantumRoutingNetwork(graphs.star(3))
        with pytest.raises(RuntimeError):
            _ = network.state

    def test_rejects_empty_alphabet(self):
        with pytest.raises(ValueError):
            QuantumRoutingNetwork(graphs.star(3), alphabet_size=0)


class TestClassicalSend:
    def test_deterministic_message_delivery(self):
        network = _star_network(3)
        network.write_message(0, 2, symbol=1)
        assert network.round_message_complexity() == 1
        network.send_all()
        rng = RandomSource(0)
        assert network.measure_reception(2, 0, rng) == 1
        # Emission register returned to vacuum after Send.
        assert network.state.marginal([network.emission(0, 2)])[VACUUM] == (
            pytest.approx(1.0)
        )

    def test_no_message_means_vacuum_received(self):
        network = _star_network(2)
        network.send_all()
        rng = RandomSource(0)
        assert network.measure_reception(1, 0, rng) == VACUUM

    def test_leaf_to_center(self):
        network = _star_network(2)
        network.write_message(2, 0, symbol=1)
        network.send_all()
        rng = RandomSource(1)
        assert network.measure_reception(0, 2, rng) == 1

    def test_rejects_bad_symbol(self):
        network = _star_network(2)
        with pytest.raises(ValueError):
            network.write_message(0, 1, symbol=2)  # alphabet has one symbol


class TestSuperposedSend:
    def test_appendix_a2_example(self):
        """Send |m⟩ to a uniformly superposed recipient: complexity 1, and
        each leaf receives the message with probability 1/3."""
        network = _star_network(3)
        amplitude = 1.0 / math.sqrt(3.0)
        network.prepare_recipient_superposition(
            0, "ctl", {1: amplitude, 2: amplitude, 3: amplitude}
        )
        network.write_message_controlled(0, "ctl", symbol=1)
        assert network.round_message_complexity() == 1
        network.send_all()
        for leaf in (1, 2, 3):
            marginal = network.state.marginal([network.reception(leaf, 0)])
            assert marginal[1] == pytest.approx(1.0 / 3.0)

    def test_biased_superposition(self):
        network = _star_network(2)
        network.prepare_recipient_superposition(
            0, "ctl", {1: math.sqrt(0.9), 2: math.sqrt(0.1)}
        )
        network.write_message_controlled(0, "ctl", symbol=1)
        network.send_all()
        assert network.state.marginal([network.reception(1, 0)])[1] == (
            pytest.approx(0.9)
        )
        assert network.state.marginal([network.reception(2, 0)])[1] == (
            pytest.approx(0.1)
        )

    def test_superposed_send_cheaper_than_broadcast(self):
        """The non-oblivious model's point: a superposed single send costs 1
        message where a classical broadcast costs deg(v)."""
        broadcast = _star_network(3)
        for leaf in (1, 2, 3):
            broadcast.write_message(0, leaf, symbol=1)
        assert broadcast.round_message_complexity() == 3

        superposed = _star_network(3)
        amplitude = 1.0 / math.sqrt(3.0)
        superposed.prepare_recipient_superposition(
            0, "ctl", {1: amplitude, 2: amplitude, 3: amplitude}
        )
        superposed.write_message_controlled(0, "ctl", symbol=1)
        assert superposed.round_message_complexity() == 1

    def test_measurement_collapses_single_recipient(self):
        network = _star_network(3)
        amplitude = 1.0 / math.sqrt(3.0)
        network.prepare_recipient_superposition(
            0, "ctl", {1: amplitude, 2: amplitude, 3: amplitude}
        )
        network.write_message_controlled(0, "ctl", symbol=1)
        network.send_all()
        rng = RandomSource(5)
        outcomes = [network.measure_reception(leaf, 0, rng) for leaf in (1, 2, 3)]
        assert sum(1 for o in outcomes if o == 1) == 1  # exactly one delivery

    def test_unnormalized_amplitudes_rejected(self):
        network = _star_network(2)
        with pytest.raises(ValueError):
            network.prepare_recipient_superposition(0, "ctl", {1: 1.0, 2: 1.0})

    def test_empty_superposition_zero_complexity(self):
        network = _star_network(2)
        assert network.round_message_complexity() == 0
