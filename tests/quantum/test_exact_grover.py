"""Tests for the exact routed Grover search (fidelity cross-validation).

These tests tie the whole stack together: the *unitary* execution on the
Appendix-A routing model must reproduce the closed-form law that the
scalable amplitude-level simulator samples from.  Any divergence between the
two layers fails here.
"""

import math

import pytest

from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import grover_success_probability
from repro.quantum.exact_grover import exact_star_grover
from repro.util.rng import RandomSource


class TestExactDynamics:
    def test_one_iteration_quarter_marked_is_certain(self):
        """ε = 1/4, j = 1: rotation lands exactly on the marked axis."""
        rng = RandomSource(0)
        for _ in range(25):
            run = exact_star_grover([1, 0, 0, 0], 1, rng.spawn())
            assert run.measured_marked
            assert run.theory_probability == pytest.approx(1.0)

    def test_zero_iterations_uniform_measurement(self):
        rng = RandomSource(1)
        hits = sum(
            exact_star_grover([1, 0, 0, 0], 0, rng.spawn()).measured_marked
            for _ in range(600)
        )
        assert abs(hits / 600 - 0.25) < 0.06

    def test_overrotation_matches_law(self):
        """j = 2 at ε = 1/4: sin²(5θ) = 1/4 — the exact unitary overrotates
        exactly as the closed form says."""
        rng = RandomSource(2)
        hits = sum(
            exact_star_grover([1, 0, 0, 0], 2, rng.spawn()).measured_marked
            for _ in range(600)
        )
        expected = grover_success_probability(2, 0.25)
        assert expected == pytest.approx(0.25)
        assert abs(hits / 600 - expected) < 0.06

    def test_half_marked_one_iteration(self):
        """ε = 1/2, j = 1: sin²(3·π/4) = 1/2."""
        rng = RandomSource(3)
        hits = sum(
            exact_star_grover([1, 1, 0, 0], 1, rng.spawn()).measured_marked
            for _ in range(600)
        )
        assert abs(hits / 600 - 0.5) < 0.06

    def test_all_marked_always_succeeds(self):
        rng = RandomSource(4)
        assert all(
            exact_star_grover([1, 1, 1], 0, rng.spawn()).measured_marked
            for _ in range(20)
        )

    def test_none_marked_never_succeeds(self):
        rng = RandomSource(5)
        assert not any(
            exact_star_grover([0, 0, 0, 0], j, rng.spawn()).measured_marked
            for j in range(3)
            for _ in range(10)
        )

    def test_theory_probability_matches_amplitude_module(self):
        rng = RandomSource(6)
        for bits, j in [([1, 0, 0], 1), ([1, 1, 0, 0], 2), ([1, 0, 0, 0], 3)]:
            run = exact_star_grover(bits, j, rng.spawn())
            expected = grover_success_probability(j, sum(bits) / len(bits))
            assert run.theory_probability == pytest.approx(expected)


class TestRoutedCosts:
    def test_two_messages_per_oracle_call(self):
        metrics = MetricsRecorder()
        exact_star_grover([1, 0, 0], 3, RandomSource(0), metrics=metrics)
        assert metrics.messages == 6  # 2 per S_f
        assert metrics.rounds == 6

    def test_zero_iterations_zero_messages(self):
        run = exact_star_grover([1, 0], 0, RandomSource(1))
        assert run.messages == 0

    def test_network_state_is_catalyst(self):
        """The port registers return to vacuum after every S_f — the 'comes
        back to its initial state' requirement in the proof of Theorem 4.1.
        (exact_star_grover raises if violated; surviving 4 iterations without
        an exception is the assertion.)"""
        run = exact_star_grover([1, 1, 0, 0], 4, RandomSource(2))
        assert run.iterations == 4


class TestValidation:
    def test_rejects_too_many_leaves(self):
        with pytest.raises(ValueError):
            exact_star_grover([0] * 7, 1, RandomSource(0))

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            exact_star_grover([0, 2], 1, RandomSource(0))

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            exact_star_grover([1, 0], -1, RandomSource(0))

    def test_measured_leaf_in_range(self):
        run = exact_star_grover([0, 1, 0], 1, RandomSource(3))
        assert 1 <= run.measured_leaf <= 3
