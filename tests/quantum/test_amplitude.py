"""Tests for repro.quantum.amplitude (rotation algebra)."""

import math

import pytest

from repro.quantum.amplitude import (
    attempts_for_confidence,
    bbht_average_success,
    grover_angle,
    grover_success_probability,
    optimal_iterations,
    worst_case_iterations,
)


class TestGroverAngle:
    def test_endpoints(self):
        assert grover_angle(0.0) == 0.0
        assert grover_angle(1.0) == pytest.approx(math.pi / 2)

    def test_quarter(self):
        assert grover_angle(0.25) == pytest.approx(math.asin(0.5))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            grover_angle(-0.1)
        with pytest.raises(ValueError):
            grover_angle(1.1)


class TestSuccessProbability:
    def test_zero_iterations_equals_marked_fraction(self):
        """sin²(θ) = ε_f: measuring the uniform state directly."""
        for eps in (0.0, 0.1, 0.5, 1.0):
            assert grover_success_probability(0, eps) == pytest.approx(eps)

    def test_quarter_marked_one_iteration_is_certain(self):
        """The textbook case ε=1/4: one iteration rotates exactly onto marked."""
        assert grover_success_probability(1, 0.25) == pytest.approx(1.0)

    def test_no_marked_elements_never_succeeds(self):
        assert all(
            grover_success_probability(j, 0.0) == 0.0 for j in range(10)
        )

    def test_overrotation_decreases(self):
        """Past the optimum, success probability falls (it's a rotation)."""
        eps = 0.01
        best = optimal_iterations(eps)
        assert grover_success_probability(best, eps) > grover_success_probability(
            3 * best, eps
        )

    def test_optimal_iterations_near_certainty_small_eps(self):
        eps = 1e-4
        best = optimal_iterations(eps)
        assert grover_success_probability(best, eps) > 0.99

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            grover_success_probability(-1, 0.5)


class TestOptimalIterations:
    def test_scaling_like_inverse_sqrt(self):
        assert optimal_iterations(1e-4) == pytest.approx(
            math.pi / 4 * 100, abs=2
        )

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            optimal_iterations(0.0)


class TestWorstCaseIterations:
    def test_inverse_sqrt(self):
        assert worst_case_iterations(0.01) == 10
        assert worst_case_iterations(1.0) == 1

    def test_rounds_up(self):
        assert worst_case_iterations(0.5) == 2  # ceil(1.414)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            worst_case_iterations(0.0)
        with pytest.raises(ValueError):
            worst_case_iterations(1.5)


class TestBBHTAverage:
    def test_closed_form_matches_direct_average(self):
        """The closed form must equal the explicit average over j."""
        eps, m = 0.03, 12
        direct = sum(
            grover_success_probability(j, eps) for j in range(m)
        ) / m
        assert bbht_average_success(m, eps) == pytest.approx(direct, rel=1e-12)

    def test_at_least_quarter_under_promise(self):
        """[BBHT98, Lemma 2]: average ≥ 1/4 once m ≥ 1/sin(2θ)."""
        for eps in (0.001, 0.01, 0.1, 0.3):
            m = worst_case_iterations(eps)
            assert bbht_average_success(m, eps) >= 0.25 - 1e-9

    def test_zero_marked_is_zero(self):
        assert bbht_average_success(5, 0.0) == 0.0

    def test_all_marked_is_one(self):
        assert bbht_average_success(5, 1.0) == pytest.approx(1.0)

    def test_rejects_zero_cap(self):
        with pytest.raises(ValueError):
            bbht_average_success(0, 0.5)


class TestAttemptsForConfidence:
    def test_failure_bound_satisfied(self):
        alpha = 1e-6
        attempts = attempts_for_confidence(alpha)
        assert (1 - 0.25) ** attempts <= alpha

    def test_monotone_in_alpha(self):
        assert attempts_for_confidence(1e-9) > attempts_for_confidence(1e-3)

    def test_custom_success_floor(self):
        assert attempts_for_confidence(0.01, per_attempt_success=0.5) == 7

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            attempts_for_confidence(0.0)
        with pytest.raises(ValueError):
            attempts_for_confidence(0.5, per_attempt_success=1.0)
