"""Tests for repro.quantum.grover_dynamics."""

from repro.quantum.amplitude import grover_success_probability, optimal_iterations
from repro.quantum.grover_dynamics import sample_attempt
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestSampleAttempt:
    def test_zero_marked_never_measures_marked(self):
        rng = RandomSource(0)
        assert not any(
            sample_attempt(0.0, j, rng).measured_marked for j in range(50)
        )

    def test_certain_rotation_always_marked(self):
        """ε = 1/4 with one iteration has success probability exactly 1."""
        rng = RandomSource(1)
        assert all(
            sample_attempt(0.25, 1, rng).measured_marked for _ in range(50)
        )

    def test_empirical_rate_matches_exact_law(self):
        rng = RandomSource(2)
        eps, j = 0.05, 2
        expected = grover_success_probability(j, eps)
        trials = 5000
        hits = sum(sample_attempt(eps, j, rng).measured_marked for _ in range(trials))
        assert abs(hits / trials - expected) < 0.03

    def test_optimal_iterations_almost_always_succeed(self):
        rng = RandomSource(3)
        eps = 0.002
        j = optimal_iterations(eps)
        hits = sum(sample_attempt(eps, j, rng).measured_marked for _ in range(200))
        assert hits > 190

    def test_outcome_records_iterations(self):
        rng = RandomSource(4)
        assert sample_attempt(0.5, 7, rng).iterations == 7

    def test_fault_forces_false_negative(self):
        rng = RandomSource(5)
        faults = FaultInjector()
        faults.force_always("grover.false_negative")
        assert not any(
            sample_attempt(1.0, 1, rng, faults=faults).measured_marked
            for _ in range(20)
        )

    def test_fault_site_is_selective(self):
        rng = RandomSource(6)
        faults = FaultInjector()
        faults.force_always("other.site")
        # ε=1, j=0: sin²(θ)=1 — always marked when the armed site differs.
        assert sample_attempt(1.0, 0, rng, faults=faults).measured_marked
