"""Tests for repro.quantum.phase_estimation (quantum counting law)."""

import math

import numpy as np
import pytest

from repro.quantum.phase_estimation import (
    counting_error_bound,
    counting_estimate_from_outcome,
    eigenphase_turns,
    qpe_distribution,
    sample_counting_estimate,
)
from repro.util.rng import RandomSource


class TestEigenphase:
    def test_endpoints(self):
        assert eigenphase_turns(0, 100) == 0.0
        assert eigenphase_turns(100, 100) == pytest.approx(0.5)

    def test_quarter(self):
        assert eigenphase_turns(25, 100) == pytest.approx(
            math.asin(0.5) / math.pi
        )

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            eigenphase_turns(-1, 10)
        with pytest.raises(ValueError):
            eigenphase_turns(11, 10)


class TestQPEDistribution:
    def test_normalized(self):
        for omega in (0.0, 0.13, 0.25, 0.4999):
            assert qpe_distribution(omega, 32).sum() == pytest.approx(1.0)

    def test_exact_phase_is_deterministic(self):
        """When ω = y/P exactly, outcome y has probability 1."""
        distribution = qpe_distribution(3 / 16, 16)
        assert distribution[3] == pytest.approx(1.0)

    def test_concentrates_near_true_phase(self):
        omega = 0.2371
        P = 64
        distribution = qpe_distribution(omega, P)
        best = int(np.argmax(distribution))
        assert abs(best / P - omega) < 1.0 / P
        # The two outcomes bracketing ω carry ≥ 8/π² of the mass.
        lo = math.floor(omega * P) % P
        hi = (lo + 1) % P
        assert distribution[lo] + distribution[hi] >= 8 / math.pi**2 - 1e-9

    def test_rejects_bad_P(self):
        with pytest.raises(ValueError):
            qpe_distribution(0.1, 0)


class TestCountingEstimate:
    def test_decoder_formula(self):
        assert counting_estimate_from_outcome(0, 100, 16) == 0.0
        assert counting_estimate_from_outcome(8, 100, 16) == pytest.approx(100.0)

    def test_zero_count_always_estimates_zero(self, ):
        rng = RandomSource(0)
        for _ in range(20):
            assert sample_counting_estimate(0, 50, 16, rng) == 0.0

    def test_full_count_estimates_full(self):
        rng = RandomSource(1)
        for _ in range(20):
            estimate = sample_counting_estimate(50, 50, 16, rng)
            assert estimate == pytest.approx(50.0, abs=1e-9)

    def test_theorem_4_2_error_law(self):
        """|t − t̃| < (2π/P)√(tN) + (π²/P²)N with probability ≥ 8/π²."""
        rng = RandomSource(42)
        t, N, P = 30, 200, 64
        bound = counting_error_bound(t, N, P)
        trials = 600
        hits = sum(
            abs(sample_counting_estimate(t, N, P, rng) - t) < bound
            for _ in range(trials)
        )
        # 8/π² ≈ 0.81; with 600 trials the rate stays comfortably above 0.75.
        assert hits / trials > 0.75

    def test_estimates_unbiased_enough_for_median(self):
        """The median of many estimates lands within the error bound."""
        rng = RandomSource(7)
        t, N, P = 40, 256, 128
        estimates = [sample_counting_estimate(t, N, P, rng) for _ in range(101)]
        median = sorted(estimates)[50]
        assert abs(median - t) < counting_error_bound(t, N, P)

    def test_larger_P_tightens_estimates(self):
        rng = RandomSource(3)
        t, N = 64, 512
        coarse = [abs(sample_counting_estimate(t, N, 16, rng) - t) for _ in range(200)]
        fine = [abs(sample_counting_estimate(t, N, 256, rng) - t) for _ in range(200)]
        assert np.median(fine) < np.median(coarse)

    def test_error_bound_formula(self):
        assert counting_error_bound(25, 100, 10) == pytest.approx(
            (2 * math.pi / 10) * 50 + (math.pi**2 / 100) * 100
        )
