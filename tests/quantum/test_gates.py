"""Tests for repro.quantum.gates."""

import numpy as np
import pytest

from repro.quantum.gates import (
    controlled,
    hadamard,
    identity,
    pauli_x,
    pauli_z,
    phase_flip_on,
    state_preparation,
    swap_gate,
)


def _is_unitary(matrix: np.ndarray) -> bool:
    return np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]), atol=1e-9)


class TestBasicGates:
    def test_all_unitary(self):
        for gate in (hadamard(), pauli_x(), pauli_z(), swap_gate(3), identity(4)):
            assert _is_unitary(gate)

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(hadamard() @ hadamard(), np.eye(2))

    def test_swap_acts_correctly(self):
        swap = swap_gate(2)
        # |01> (index 1) -> |10> (index 2)
        vec = np.zeros(4)
        vec[1] = 1.0
        assert np.allclose(swap @ vec, np.eye(4)[2])

    def test_swap_is_involution(self):
        s = swap_gate(3)
        assert np.allclose(s @ s, np.eye(9))


class TestControlled:
    def test_block_structure(self):
        gate = controlled(pauli_x(), control_dimension=3, active=1)
        assert _is_unitary(gate)
        # control=0 block is identity, control=1 block is X
        assert np.allclose(gate[:2, :2], np.eye(2))
        assert np.allclose(gate[2:4, 2:4], pauli_x())
        assert np.allclose(gate[4:6, 4:6], np.eye(2))

    def test_rejects_bad_active_value(self):
        with pytest.raises(ValueError):
            controlled(pauli_x(), control_dimension=2, active=2)


class TestPhaseFlip:
    def test_flips_listed_states(self):
        gate = phase_flip_on(4, {1, 3})
        assert np.allclose(np.diag(gate), [1, -1, 1, -1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            phase_flip_on(3, {3})


class TestStatePreparation:
    def test_first_column_is_target(self):
        target = np.array([0.5, 0.5, 0.5, 0.5], dtype=complex)
        gate = state_preparation(target)
        assert _is_unitary(gate)
        assert np.allclose(gate[:, 0], target)

    def test_arbitrary_complex_state(self):
        target = np.array([0.6, 0.8j], dtype=complex)
        gate = state_preparation(target)
        assert _is_unitary(gate)
        assert np.allclose(gate[:, 0], target)

    def test_prepares_from_zero_state(self):
        target = np.array([1, 1, 1], dtype=complex) / np.sqrt(3)
        gate = state_preparation(target)
        zero = np.eye(3)[0]
        assert np.allclose(gate @ zero, target)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            state_preparation(np.array([1.0, 1.0]))
