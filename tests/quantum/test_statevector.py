"""Tests for the dense state-vector simulator."""

import numpy as np
import pytest

from repro.quantum.gates import hadamard, pauli_x, swap_gate
from repro.quantum.statevector import DenseState
from repro.util.rng import RandomSource


class TestConstruction:
    def test_starts_in_all_zero(self):
        state = DenseState([2, 3])
        assert state.amplitude((0, 0)) == pytest.approx(1.0)
        assert state.norm() == pytest.approx(1.0)

    def test_rejects_empty_and_trivial_dims(self):
        with pytest.raises(ValueError):
            DenseState([])
        with pytest.raises(ValueError):
            DenseState([2, 1])

    def test_rejects_huge_spaces(self):
        with pytest.raises(ValueError):
            DenseState([2] * 30)

    def test_set_basis_state(self):
        state = DenseState([2, 2, 3])
        state.set_basis_state((1, 0, 2))
        assert state.probability_of((1, 0, 2)) == pytest.approx(1.0)


class TestEvolution:
    def test_hadamard_creates_uniform_qubit(self):
        state = DenseState([2])
        state.apply(hadamard(), [0])
        assert state.probability_of((0,)) == pytest.approx(0.5)
        assert state.probability_of((1,)) == pytest.approx(0.5)

    def test_hadamard_twice_is_identity(self):
        state = DenseState([2, 2])
        state.apply(hadamard(), [0])
        state.apply(hadamard(), [0])
        assert state.probability_of((0, 0)) == pytest.approx(1.0)

    def test_pauli_x_flips(self):
        state = DenseState([2, 2])
        state.apply(pauli_x(), [1])
        assert state.probability_of((0, 1)) == pytest.approx(1.0)

    def test_two_subsystem_gate_ordering(self):
        """Apply CNOT-like swap gate across differently-ordered targets."""
        state = DenseState([2, 2])
        state.set_basis_state((1, 0))
        state.apply(swap_gate(2), [0, 1])
        assert state.probability_of((0, 1)) == pytest.approx(1.0)

    def test_apply_preserves_norm(self):
        rng = np.random.default_rng(0)
        state = DenseState([2, 3, 2])
        state.apply(hadamard(), [0])
        # random unitary on the qutrit via QR
        q, _ = np.linalg.qr(rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3)))
        state.apply(q, [1])
        assert state.norm() == pytest.approx(1.0)

    def test_apply_validates_shape(self):
        state = DenseState([2, 3])
        with pytest.raises(ValueError):
            state.apply(hadamard(), [1])  # 2x2 gate on a qutrit

    def test_apply_rejects_duplicate_targets(self):
        state = DenseState([2, 2])
        with pytest.raises(ValueError):
            state.apply(swap_gate(2), [0, 0])

    def test_swap_subsystems(self):
        state = DenseState([2, 2, 2])
        state.set_basis_state((1, 0, 0))
        state.swap_subsystems(0, 2)
        assert state.probability_of((0, 0, 1)) == pytest.approx(1.0)

    def test_swap_rejects_dimension_mismatch(self):
        state = DenseState([2, 3])
        with pytest.raises(ValueError):
            state.swap_subsystems(0, 1)


class TestMeasurement:
    def test_deterministic_measurement(self):
        state = DenseState([3, 2])
        state.set_basis_state((2, 1))
        rng = RandomSource(0)
        assert state.measure(0, rng) == 2
        assert state.measure(1, rng) == 1

    def test_measurement_collapses(self):
        state = DenseState([2, 2])
        state.apply(hadamard(), [0])
        rng = RandomSource(1)
        outcome = state.measure(0, rng)
        assert state.probability_of((outcome, 0)) == pytest.approx(1.0)

    def test_measurement_statistics(self):
        rng = RandomSource(2)
        ones = 0
        for _ in range(600):
            state = DenseState([2])
            state.apply(hadamard(), [0])
            ones += state.measure(0, rng)
        assert 240 < ones < 360

    def test_marginal(self):
        state = DenseState([2, 2])
        state.apply(hadamard(), [0])
        marginal = state.marginal([0])
        assert marginal == pytest.approx([0.5, 0.5])

    def test_entangled_marginal(self):
        """Bell-like state on (qubit, qubit): marginals are uniform."""
        state = DenseState([2, 2])
        state.apply(hadamard(), [0])
        cnot = np.eye(4)[[0, 1, 3, 2]]
        state.apply(cnot, [0, 1])
        assert state.marginal([1]) == pytest.approx([0.5, 0.5])
        assert state.probability_of((0, 0)) == pytest.approx(0.5)
        assert state.probability_of((1, 1)) == pytest.approx(0.5)
