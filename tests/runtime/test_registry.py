"""Tests for the protocol registry."""

import pytest

from repro.network.topology import CompleteTopology, StarTopology
from repro.runtime.registry import (
    ProtocolRegistry,
    ProtocolSpec,
    TrialOutcome,
    default_registry,
)
from repro.util.rng import RandomSource

EXPECTED_PROTOCOLS = [
    "le-complete/quantum",
    "le-complete/classical",
    "le-mixing/quantum",
    "le-mixing/classical",
    "le-diameter2/quantum",
    "le-diameter2/classical",
    "le-general/quantum",
    "le-general/classical",
    "le-ring/lcr",
    "le-ring/hs",
    "agreement/quantum",
    "agreement/classical-shared",
    "agreement/classical-private",
    "mst/quantum",
    "mst/classical",
    "search-star/quantum",
    "search-star/classical",
    "count-star/quantum",
    "count-star/classical",
]


class TestDefaultRegistry:
    def test_builtins_registered(self):
        registry = default_registry()
        for name in EXPECTED_PROTOCOLS:
            assert name in registry

    def test_is_singleton(self):
        assert default_registry() is default_registry()

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            default_registry().get("le-mobius/quantum")

    def test_select_by_side_and_family(self):
        registry = default_registry()
        quantum_le = registry.select(side="quantum", family="leader-election")
        assert {spec.name for spec in quantum_le} >= {
            "le-complete/quantum",
            "le-diameter2/quantum",
        }
        assert all(spec.side == "quantum" for spec in quantum_le)
        assert len(registry.select()) == len(registry)

    def test_every_spec_documented(self):
        for spec in default_registry():
            assert spec.description, f"{spec.name} has no description"
            assert spec.topologies, f"{spec.name} names no topology families"


class TestProtocolRegistry:
    def test_duplicate_registration_rejected(self):
        registry = ProtocolRegistry()
        spec = ProtocolSpec(
            name="x", side="quantum", family="f", topologies=("complete",),
            builder=lambda topology, rng: TrialOutcome(1, 1, True),
        )
        registry.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)

    def test_bad_side_rejected(self):
        registry = ProtocolRegistry()
        with pytest.raises(ValueError, match="side"):
            registry.register(
                ProtocolSpec(
                    name="x", side="spooky", family="f", topologies=("complete",),
                    builder=lambda topology, rng: TrialOutcome(1, 1, True),
                )
            )


class TestSpecRun:
    def test_complete_le_runs_and_elects(self):
        outcome = default_registry().get("le-complete/quantum").run(
            CompleteTopology(64), RandomSource(7)
        )
        assert outcome.success
        assert outcome.messages > 0
        assert outcome.extra["candidates"] >= 1
        assert outcome.detail["leader"] is not None

    def test_defaults_merge_with_overrides(self):
        spec = default_registry().get("search-star/quantum")
        assert dict(spec.defaults)["alpha"] == 0.01
        outcome = spec.run(StarTopology(64), RandomSource(3), alpha=0.2)
        assert outcome.messages > 0

    def test_agreement_detail_carries_value(self):
        outcome = default_registry().get("agreement/classical-private").run(
            CompleteTopology(64), RandomSource(5)
        )
        assert outcome.detail["value"] in (0, 1, None)
