"""Tests for node-API selection: registry resolution, scenario plumbing,
and the v3 result-store keys that separate batch from scalar trial sets."""

import pytest

from repro.runtime import (
    ResultStore,
    Scenario,
    TopologySpec,
    default_registry,
    get_scenario,
    run_scenario,
)
from repro.runtime.store import _FORMAT_VERSION


class TestResolveNodeApi:
    def test_auto_prefers_batch_when_supported(self):
        registry = default_registry()
        assert registry.get("le-ring/lcr").resolve_node_api("auto") == "batch"
        assert (
            registry.get("le-complete/classical").resolve_node_api("auto")
            == "batch"
        )
        assert (
            registry.get("agreement/amp18-engine").resolve_node_api("auto")
            == "batch"
        )

    def test_auto_falls_back_to_scalar(self):
        assert (
            default_registry().get("le-general/classical").resolve_node_api("auto")
            == "scalar"
        )

    def test_explicit_requests_pass_through(self):
        spec = default_registry().get("le-ring/lcr")
        assert spec.resolve_node_api("scalar") == "scalar"
        assert spec.resolve_node_api("batch") == "batch"

    def test_batch_on_scalar_only_protocol_is_rejected(self):
        spec = default_registry().get("le-general/classical")
        with pytest.raises(ValueError, match="array-native"):
            spec.resolve_node_api("batch")

    def test_unknown_request_is_rejected(self):
        spec = default_registry().get("le-ring/lcr")
        with pytest.raises(ValueError, match="node_api"):
            spec.resolve_node_api("vector")

    def test_describe_dict_lists_supports(self):
        payload = default_registry().get("le-ring/lcr").describe_dict()
        assert payload["supports"] == ["adaptive", "batch", "faults"]
        assert payload["name"] == "le-ring/lcr"


class TestScenarioNodeApi:
    def test_default_is_auto(self):
        assert get_scenario("ring-le/lcr").node_api == "auto"
        assert get_scenario("ring-le/lcr").resolved_node_api == "batch"
        assert get_scenario("ring-le/hs").resolved_node_api == "batch"
        assert get_scenario("general-le/classical").resolved_node_api == "scalar"

    def test_with_overrides_swaps_node_api(self):
        scenario = get_scenario("ring-le/lcr").with_overrides(node_api="scalar")
        assert scenario.node_api == "scalar"
        assert scenario.resolved_node_api == "scalar"

    def test_invalid_node_api_rejected_at_construction(self):
        with pytest.raises(ValueError, match="node_api"):
            Scenario(
                name="bad",
                protocol="le-ring/lcr",
                topology=TopologySpec("cycle"),
                sizes=(8,),
                node_api="vector",
            )

    def test_batch_request_on_scalar_protocol_fails_the_trial(self):
        scenario = get_scenario("general-le/classical").with_overrides(
            node_api="batch"
        )
        with pytest.raises(ValueError, match="array-native"):
            run_scenario(scenario, jobs=1, sizes=[8], trials=1)

    def test_batch_and_scalar_aggregates_are_bit_identical(self):
        base = get_scenario("ring-le/lcr")
        batch = run_scenario(
            base.with_overrides(node_api="batch"), jobs=1, sizes=[8, 16], trials=2
        )
        scalar = run_scenario(
            base.with_overrides(node_api="scalar"), jobs=1, sizes=[8, 16], trials=2
        )
        assert batch.trial_sets == scalar.trial_sets

    def test_amp18_engine_scenario_runs(self):
        run = run_scenario(
            get_scenario("agreement-engine/classical"),
            jobs=1,
            sizes=[16],
            trials=2,
        )
        assert run.trial_sets[0].trials == 2


class TestStoreKeysV3:
    def test_identity_records_resolved_node_api(self):
        scenario = get_scenario("ring-le/lcr")
        identity = ResultStore.identity(scenario, 8, 0)
        assert identity["version"] == _FORMAT_VERSION == 4
        assert identity["node_api"] == "batch"

    def test_batch_and_scalar_keys_differ(self, tmp_path):
        store = ResultStore(root=tmp_path)
        base = get_scenario("ring-le/lcr")
        batch_path = store.path_for(base.with_overrides(node_api="batch"), 8, 0)
        scalar_path = store.path_for(base.with_overrides(node_api="scalar"), 8, 0)
        auto_path = store.path_for(base, 8, 0)
        assert batch_path != scalar_path
        # auto resolves to batch for this protocol, so the keys coincide.
        assert auto_path == batch_path

    def test_scalar_cache_never_serves_batch_runs(self, tmp_path):
        store = ResultStore(root=tmp_path)
        base = get_scenario("ring-le/lcr").with_overrides(sizes=(8,), trials=1)
        scalar = base.with_overrides(node_api="scalar")
        run = run_scenario(scalar, jobs=1, store=store)
        assert store.load(scalar, 8, 0) == run.trial_sets[0]
        assert store.load(base.with_overrides(node_api="batch"), 8, 0) is None

    def test_fault_free_keys_are_stable_across_runs(self, tmp_path):
        store = ResultStore(root=tmp_path)
        scenario = get_scenario("ring-le/lcr").with_overrides(
            sizes=(8,), trials=1
        )
        first = store.path_for(scenario, 8, 0)
        run_scenario(scenario, jobs=1, store=store)
        assert store.path_for(scenario, 8, 0) == first
        assert store.load(scenario, 8, 0) is not None
        assert ResultStore.identity(scenario, 8, 0)["adversary"] is None
