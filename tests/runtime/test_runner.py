"""Tests for the parallel trial runner — above all, determinism.

The contract: a scenario seed fully determines the aggregates, regardless
of whether trials run serially (``jobs=1``) or across a process pool
(``jobs=4``), and the runtime reproduces the pre-refactor
``measure_scaling`` numbers bit-for-bit on the E1/E7 smoke grids.
"""

import statistics

import pytest

from repro.analysis.scaling import measure_scaling
from repro.core.grover import distributed_grover_search
from repro.core.leader_election.complete import quantum_le_complete
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.runtime import (
    TrialOutcome,
    aggregate_trials,
    fan_out,
    get_scenario,
    resolve_jobs,
    run_scenario,
)
from repro.util.rng import RandomSource

SMOKE_SIZES = (32, 64)
SMOKE_TRIALS = 4


# -- module-level runners (picklable, and exactly the pre-refactor shape) ----


def _legacy_e1_runner(n, rng):
    """The pre-refactor bench_e01 quantum runner, verbatim."""
    result = quantum_le_complete(n, rng)
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


def _legacy_e7_runner(n, rng):
    """The pre-refactor bench_e07 star-search trial, verbatim."""
    oracle = SetOracle(
        domain=range(n),
        marked={0},
        charge_checking=uniform_charge(2, 2, "star.checking"),
    )
    metrics = MetricsRecorder()
    result = distributed_grover_search(oracle, 1.0 / n, 0.01, metrics, rng)
    return metrics.messages, metrics.rounds, result.succeeded, {}


def _double(task):
    return task * 2


class TestFanOut:
    def test_preserves_order(self):
        assert fan_out(_double, list(range(20)), jobs=4) == [
            2 * i for i in range(20)
        ]

    def test_empty_tasks(self):
        assert fan_out(_double, [], jobs=4) == []

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(0)

    def test_none_means_all_cores(self):
        assert resolve_jobs(None) >= 1


class TestAggregation:
    def test_matches_hand_computation(self):
        outcomes = [
            TrialOutcome(messages=m, rounds=2, success=m < 30, extra={"k": m})
            for m in (10.0, 20.0, 30.0, 40.0)
        ]
        trial_set = aggregate_trials(8, outcomes)
        assert trial_set.messages_mean == statistics.fmean([10, 20, 30, 40])
        assert trial_set.messages_std == statistics.pstdev([10, 20, 30, 40])
        assert trial_set.messages_p50 == 20.0
        assert trial_set.messages_p90 == 40.0
        assert trial_set.messages_max == 40.0
        assert trial_set.success_rate == 0.5
        assert trial_set.extra == {"k": 25.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_trials(8, [])


class TestParallelSerialIdentity:
    """jobs=1 and jobs=4 must produce *identical* aggregates."""

    @pytest.mark.parametrize(
        "scenario_name",
        ["complete-le/quantum", "star-search/quantum", "agreement/classical"],
    )
    def test_scenario_aggregates_identical(self, scenario_name):
        scenario = get_scenario(scenario_name).with_overrides(
            sizes=SMOKE_SIZES, trials=SMOKE_TRIALS
        )
        serial = run_scenario(scenario, jobs=1)
        parallel = run_scenario(scenario, jobs=4)
        assert serial.trial_sets == parallel.trial_sets

    def test_measure_scaling_jobs_identical(self):
        serial = measure_scaling(
            "q", _legacy_e1_runner, list(SMOKE_SIZES), SMOKE_TRIALS, seed=10, jobs=1
        )
        parallel = measure_scaling(
            "q", _legacy_e1_runner, list(SMOKE_SIZES), SMOKE_TRIALS, seed=10, jobs=4
        )
        assert serial.points == parallel.points


class TestPreRefactorEquivalence:
    """The runtime reproduces legacy measure_scaling output bit-for-bit."""

    def _assert_series_equal(self, legacy, run):
        for legacy_point, trial_set in zip(legacy.points, run.trial_sets):
            assert legacy_point.n == trial_set.n
            assert legacy_point.messages_mean == trial_set.messages_mean
            assert legacy_point.messages_std == trial_set.messages_std
            assert legacy_point.rounds_mean == trial_set.rounds_mean
            assert legacy_point.success_rate == trial_set.success_rate

    def test_e1_smoke_identical(self):
        legacy = measure_scaling(
            "quantum", _legacy_e1_runner, list(SMOKE_SIZES), SMOKE_TRIALS, seed=10
        )
        scenario = get_scenario("complete-le/quantum").with_overrides(
            sizes=SMOKE_SIZES, trials=SMOKE_TRIALS, seed=10
        )
        self._assert_series_equal(legacy, run_scenario(scenario, jobs=4))

    def test_e7_smoke_identical(self):
        legacy = measure_scaling(
            "quantum", _legacy_e7_runner, list(SMOKE_SIZES), SMOKE_TRIALS, seed=70
        )
        scenario = get_scenario("star-search/quantum").with_overrides(
            sizes=SMOKE_SIZES, trials=SMOKE_TRIALS, seed=70
        )
        self._assert_series_equal(legacy, run_scenario(scenario, jobs=4))

    def test_to_series_feeds_fitting_unchanged(self):
        scenario = get_scenario("star-search/classical").with_overrides(
            sizes=(32, 64, 128), trials=1
        )
        series = run_scenario(scenario, jobs=1).to_series("classical")
        # deterministic 2(n-1) flood → exactly linear fit
        assert series.fit().exponent == pytest.approx(1.0, abs=0.02)


class TestRunScenario:
    def test_grid_and_trial_counts(self):
        scenario = get_scenario("ring-le/hs").with_overrides(
            sizes=(16, 32), trials=2
        )
        run = run_scenario(scenario, jobs=2)
        assert run.sizes == [16, 32]
        assert all(ts.trials == 2 for ts in run.trial_sets)
        assert run.overall_success_rate() == 1.0

    def test_inline_overrides(self):
        scenario = get_scenario("ring-le/lcr")
        run = run_scenario(scenario, jobs=1, sizes=[12], trials=1, seed=3)
        assert run.sizes == [12]
        assert run.scenario.seed == 3
