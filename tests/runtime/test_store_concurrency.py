"""Satellite: ResultStore stays sane under concurrent writers.

Two real processes hammer one store directory — an eviction racing a
concurrent save (the size cap hit mid-write), and many processes saving
the *same* key simultaneously (the fabric's duplicate-completion path).
Every surviving file must always parse as complete JSON: the pid-unique
tmp + atomic-replace protocol never exposes a torn document.
"""

import json
import multiprocessing
import sys

import pytest

from repro.runtime import ResultStore, Scenario, TopologySpec
from repro.runtime.runner import TrialSet


def _scenario(seed: int = 3) -> Scenario:
    return Scenario(
        name="store-race/star",
        protocol="search-star/classical",
        topology=TopologySpec("star"),
        sizes=(8,),
        trials=1,
        seed=seed,
    )


def _trial_set(n: int) -> TrialSet:
    return TrialSet(
        n=n,
        trials=1,
        success_rate=1.0,
        messages_mean=float(n),
        messages_std=0.0,
        messages_p50=float(n),
        messages_p90=float(n),
        messages_max=float(n),
        rounds_mean=1.0,
    )


def _save_many(root: str, max_entries: int, seed: int, count: int) -> None:
    """Worker: save ``count`` distinct keys, each save running evict()."""
    store = ResultStore(root, max_entries=max_entries)
    scenario = _scenario(seed)
    for position in range(count):
        store.save(scenario, 8 + position, position, _trial_set(8 + position))


def _save_same_key(root: str, repeats: int) -> None:
    """Worker: save one identical key over and over."""
    store = ResultStore(root, max_entries=64)
    scenario = _scenario()
    for _ in range(repeats):
        store.save(scenario, 8, 0, _trial_set(8))


def _context():
    return (
        multiprocessing.get_context("fork")
        if sys.platform == "linux"
        else multiprocessing.get_context()
    )


def _run_all(processes) -> None:
    for p in processes:
        p.start()
    for p in processes:
        p.join(timeout=120)
    assert all(p.exitcode == 0 for p in processes)


class TestEvictRacesSave:
    def test_cap_hit_mid_write_never_tears_files(self, tmp_path):
        # Two writers, a cap small enough that every save evicts: each
        # process's evict() keeps deleting files the other is writing.
        ctx = _context()
        processes = [
            ctx.Process(target=_save_many, args=(str(tmp_path), 5, seed, 40))
            for seed in (1, 2)
        ]
        _run_all(processes)
        store = ResultStore(tmp_path, max_entries=5)
        survivors = list(tmp_path.glob("*.json"))
        assert survivors  # the race deletes files, never the whole store
        for path in survivors:
            payload = json.loads(path.read_text())  # complete JSON, always
            assert "identity" in payload and "trial_set" in payload
        assert list(tmp_path.glob("*.tmp")) == []
        store.evict()
        assert len(list(tmp_path.glob("*.json"))) <= 5

    def test_evicted_entry_is_recomputable(self, tmp_path):
        # The documented contract: losing the race only costs a recompute.
        store = ResultStore(tmp_path, max_entries=1)
        scenario = _scenario()
        store.save(scenario, 8, 0, _trial_set(8))
        store.save(scenario, 9, 1, _trial_set(9))  # evicts position 0
        assert store.load(scenario, 8, 0) is None
        store.save(scenario, 8, 0, _trial_set(8))  # ...and back it comes
        assert store.load(scenario, 8, 0) == _trial_set(8)


class TestSameKeyRaces:
    def test_concurrent_same_key_saves_stay_atomic(self, tmp_path):
        ctx = _context()
        processes = [
            ctx.Process(target=_save_same_key, args=(str(tmp_path), 30))
            for _ in range(3)
        ]
        _run_all(processes)
        store = ResultStore(tmp_path, max_entries=64)
        scenario = _scenario()
        # The key holds exactly the payload any single writer produces.
        assert store.load(scenario, 8, 0) == _trial_set(8)
        assert len(list(tmp_path.glob("*.json"))) == 1
        # pid-unique tmp names: no process ever leaves a torn tmp behind.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_tmp_files_are_pid_unique(self, tmp_path, monkeypatch):
        # The regression this PR fixed: a shared tmp name lets two
        # writers interleave into one file before the replace.
        store = ResultStore(tmp_path)
        scenario = _scenario()
        seen = []
        original_replace = type(tmp_path).replace

        def spy(self, target):
            seen.append(self.name)
            return original_replace(self, target)

        monkeypatch.setattr(type(tmp_path), "replace", spy)
        store.save(scenario, 8, 0, _trial_set(8))
        import os

        assert seen and seen[0].endswith(f".{os.getpid()}.tmp")


@pytest.mark.skipif(sys.platform != "linux", reason="fork-specific timing")
class TestClearRacesSave:
    def test_clear_sweeps_orphaned_tmps(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _scenario()
        store.save(scenario, 8, 0, _trial_set(8))
        # A writer killed between tmp write and replace leaves this file.
        (tmp_path / "orphan.json.12345.tmp").write_text("{torn")
        assert store.clear() == 1  # one real entry removed...
        assert list(tmp_path.glob("*.tmp")) == []  # ...and the tmp swept
