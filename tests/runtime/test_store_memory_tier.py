"""Concurrent ResultStore memory-tier access (the serve hot path).

The contract under hammer: N threads loading one key do exactly one
disk read (single-flight), all share the same deserialized object, and
the memory-tier hit/miss counters sum to the request count.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime import Scenario, TopologySpec, run_scenario
from repro.runtime.store import ResultStore
from repro.telemetry import metrics_registry, reset_metrics

THREADS = 16


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "default-cache"))
    reset_metrics()
    yield
    reset_metrics()


def _scenario(**overrides) -> Scenario:
    base = dict(
        name="memtier-test/star",
        protocol="search-star/classical",
        topology=TopologySpec("star"),
        sizes=(8,),
        trials=2,
        seed=5,
    )
    base.update(overrides)
    return Scenario(**base)


def _hammer(store, scenario, n=8, position=0):
    results = [None] * THREADS
    barrier = threading.Barrier(THREADS)

    def load(index: int) -> None:
        barrier.wait()
        results[index] = store.load(scenario, n, position)

    threads = [
        threading.Thread(target=load, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    return results


def _value(delta: dict, name: str) -> float:
    return delta.get(name, {}).get("value", 0)


class TestMemoryTierConcurrency:
    def test_one_disk_load_shared_object_counters_sum(self, tmp_path):
        scenario = _scenario()
        # Populate the disk tier through a memory-less store, so the
        # hammered store's first load truly goes to disk.
        run_scenario(scenario, jobs=1, store=ResultStore(tmp_path / "cache"))
        store = ResultStore(tmp_path / "cache", memory_entries=8)
        registry = metrics_registry()
        before = registry.snapshot()

        results = _hammer(store, scenario)

        assert all(r is not None for r in results)
        assert all(r is results[0] for r in results)  # one shared object
        delta = registry.delta(before)
        # Exactly one disk read for all THREADS callers...
        assert _value(delta, "repro_store_hits_total") == 1
        assert _value(delta, "repro_store_misses_total") == 0
        # ...and the tier-1 counters account for every request: one
        # single-flight leader missed, everyone else hit.
        hits = _value(delta, "repro_store_memory_hits_total")
        misses = _value(delta, "repro_store_memory_misses_total")
        assert misses == 1
        assert hits == THREADS - 1
        assert hits + misses == THREADS

    def test_absent_key_single_flights_the_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache", memory_entries=8)
        scenario = _scenario(seed=99)  # nothing saved for this key
        registry = metrics_registry()
        before = registry.snapshot()

        results = _hammer(store, scenario)

        assert results == [None] * THREADS
        delta = registry.delta(before)
        # A None result is not cached, so threads arriving after a
        # flight lands start a new one — but concurrent callers still
        # share flights, so disk misses stay well below request count.
        disk_misses = _value(delta, "repro_store_misses_total")
        assert 1 <= disk_misses <= THREADS
        assert _value(delta, "repro_store_memory_misses_total") == THREADS
        assert _value(delta, "repro_store_memory_hits_total") == 0

    def test_save_populates_memory_tier(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "cache", memory_entries=8)
        run_scenario(scenario, jobs=1, store=store)
        registry = metrics_registry()
        before = registry.snapshot()
        assert store.load(scenario, 8, 0) is not None
        delta = registry.delta(before)
        assert _value(delta, "repro_store_hits_total") == 0  # no disk read
        assert _value(delta, "repro_store_memory_hits_total") == 1

    def test_memory_cap_evicts_lru(self, tmp_path):
        store = ResultStore(tmp_path / "cache", memory_entries=2)
        for seed in (1, 2, 3):
            run_scenario(_scenario(seed=seed), jobs=1, store=store)
        assert store.stats()["memory_entries"] == 2
        assert store.stats()["memory_entries_cap"] == 2

    def test_disabled_tier_keeps_plain_disk_path(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "cache")  # memory off by default
        run_scenario(scenario, jobs=1, store=store)
        registry = metrics_registry()
        before = registry.snapshot()
        first = store.load(scenario, 8, 0)
        second = store.load(scenario, 8, 0)
        assert first == second
        assert first is not second  # two independent disk parses
        delta = registry.delta(before)
        assert _value(delta, "repro_store_hits_total") == 2
        assert _value(delta, "repro_store_memory_hits_total") == 0
        assert _value(delta, "repro_store_memory_misses_total") == 0

    def test_clear_drops_memory_tier(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "cache", memory_entries=8)
        run_scenario(scenario, jobs=1, store=store)
        assert store.stats()["memory_entries"] > 0
        store.clear()
        assert store.stats()["memory_entries"] == 0
        assert store.load(scenario, 8, 0) is None
