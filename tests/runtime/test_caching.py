"""Tests for the two runtime caches: topology memo and on-disk result store.

Both caches are pure accelerations — every test here pairs a cached run
against a cold run and asserts bit-identical aggregates.
"""

import pytest

from repro.runtime import (
    ResultStore,
    Scenario,
    TopologySpec,
    clear_topology_memo,
    run_scenario,
    topology_memo_enabled,
)
from repro.runtime.scenario import _TOPOLOGY_MEMO


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_topology_memo()
    yield
    clear_topology_memo()


def _star_scenario(**overrides):
    base = dict(
        name="cache-test/star",
        protocol="search-star/classical",
        topology=TopologySpec("star"),
        sizes=(16, 32),
        trials=2,
        seed=5,
    )
    base.update(overrides)
    return Scenario(**base)


class TestTopologyMemo:
    def test_deterministic_family_is_memoized(self):
        spec = TopologySpec("star")
        assert spec.build_cached(16) is spec.build_cached(16)
        assert len(_TOPOLOGY_MEMO) == 1

    def test_fixed_seed_family_is_memoized(self):
        spec = TopologySpec("erdos-renyi", (("p", 0.5),), fixed_seed=77)
        first = spec.build_cached(24)
        assert spec.build_cached(24) is first
        # ... and the memoized graph equals a fresh build bit for bit.
        fresh = spec.build(24)
        assert sorted(fresh.edges()) == sorted(first.edges())

    def test_per_trial_random_family_rejected(self):
        spec = TopologySpec("erdos-renyi", (("p", 0.5),))
        with pytest.raises(ValueError, match="per-trial"):
            spec.build_cached(24)

    def test_distinct_keys_do_not_collide(self):
        spec = TopologySpec("star")
        assert spec.build_cached(16) is not spec.build_cached(32)
        other = TopologySpec("erdos-renyi", (("p", 0.5),), fixed_seed=1)
        assert other.build_cached(16).n == 16
        assert len(_TOPOLOGY_MEMO) == 3

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TOPOLOGY_CACHE", "1")
        assert not topology_memo_enabled()
        spec = TopologySpec("star")
        assert spec.build_cached(16) is not spec.build_cached(16)
        assert not _TOPOLOGY_MEMO

    def test_memo_used_once_per_size_in_a_sweep(self, monkeypatch):
        scenario = _star_scenario()
        calls = []
        original = TopologySpec.build

        def counting(self, n, rng=None):
            calls.append(n)
            return original(self, n, rng)

        monkeypatch.setattr(TopologySpec, "build", counting)
        run_scenario(scenario, jobs=1)
        assert sorted(calls) == [16, 32]  # one build per size, not per trial

    def test_memo_does_not_change_aggregates(self, monkeypatch):
        scenario = _star_scenario()
        warm = run_scenario(scenario, jobs=1)
        monkeypatch.setenv("REPRO_NO_TOPOLOGY_CACHE", "1")
        cold = run_scenario(scenario, jobs=1)
        assert warm.trial_sets == cold.trial_sets


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _star_scenario()
        run = run_scenario(scenario, jobs=1, store=store)
        for position, trial_set in enumerate(run.trial_sets):
            assert store.load(scenario, trial_set.n, position) == trial_set

    def test_second_run_hits_cache(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        scenario = _star_scenario()
        cold = run_scenario(scenario, jobs=1, store=store)

        def explode(self, n, rng, registry=None):
            raise AssertionError("cache miss: trial recomputed")

        monkeypatch.setattr(Scenario, "run_trial", explode)
        warm = run_scenario(scenario, jobs=1, store=store)
        assert warm.trial_sets == cold.trial_sets

    def test_extending_grid_computes_only_new_sizes(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        run_scenario(_star_scenario(sizes=(16,)), jobs=1, store=store)

        computed = []
        original = Scenario.run_trial

        def counting(self, n, rng, registry=None):
            computed.append(n)
            return original(self, n, rng, registry)

        monkeypatch.setattr(Scenario, "run_trial", counting)
        extended = run_scenario(_star_scenario(sizes=(16, 32)), jobs=1, store=store)
        assert set(computed) == {32}
        # The partially-cached run equals a cold full run bit for bit.
        cold = run_scenario(_star_scenario(sizes=(16, 32)), jobs=1)
        assert extended.trial_sets == cold.trial_sets

    def test_identity_mismatch_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _star_scenario()
        run_scenario(scenario, jobs=1, store=store)
        assert store.load(_star_scenario(seed=6), 16, 0) is None
        assert store.load(_star_scenario(trials=3), 16, 0) is None
        assert store.load(scenario, 64, 0) is None

    def test_grid_position_is_part_of_the_key(self, tmp_path):
        """A trial set cached at one grid position must not serve another:
        per-trial seeds are spawned in grid order, so the same size at a
        different position uses a different seed stream."""
        store = ResultStore(tmp_path)
        run_scenario(_star_scenario(sizes=(32,)), jobs=1, store=store)
        # 32 moved from position 0 to position 1 → miss, full recompute ...
        assert store.load(_star_scenario(sizes=(16, 32)), 32, 1) is None
        reordered = run_scenario(_star_scenario(sizes=(16, 32)), jobs=1, store=store)
        # ... and the result equals a cold run of the reordered grid.
        cold = run_scenario(_star_scenario(sizes=(16, 32)), jobs=1)
        assert reordered.trial_sets == cold.trial_sets

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _star_scenario()
        run = run_scenario(scenario, jobs=1, store=store)
        path = store.path_for(scenario, 16, 0)
        path.write_text("{not json")
        assert store.load(scenario, 16, 0) is None
        again = run_scenario(scenario, jobs=1, store=store)
        assert again.trial_sets == run.trial_sets

    def test_clear_removes_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _star_scenario()
        run_scenario(scenario, jobs=1, store=store)
        assert store.clear() == 2
        assert store.load(scenario, 16, 0) is None

    def test_store_does_not_change_aggregates(self, tmp_path):
        scenario = _star_scenario()
        plain = run_scenario(scenario, jobs=1)
        stored = run_scenario(scenario, jobs=1, store=ResultStore(tmp_path))
        assert plain.trial_sets == stored.trial_sets

    def test_parallel_and_serial_agree_with_store(self, tmp_path):
        scenario = _star_scenario()
        serial = run_scenario(scenario, jobs=1, store=ResultStore(tmp_path / "a"))
        parallel = run_scenario(scenario, jobs=2, store=ResultStore(tmp_path / "b"))
        assert serial.trial_sets == parallel.trial_sets


class TestEviction:
    def test_cap_evicts_oldest_entries(self, tmp_path):
        import os
        import time

        writer = ResultStore(tmp_path)  # default cap: nothing evicted yet
        scenarios = [_star_scenario(seed=s, sizes=(16,)) for s in range(5)]
        now = time.time()
        for i, scenario in enumerate(scenarios):
            run_scenario(scenario, jobs=1, store=writer)
            # mtime granularity can be coarse; pin an explicit write order.
            os.utime(writer.path_for(scenario, 16, 0), (now + i, now + i))
        capped = ResultStore(tmp_path, max_entries=3)
        assert capped.evict() == 2
        assert capped.stats()["entries"] == 3
        # The two oldest writes are gone, the three newest survive.
        assert capped.load(scenarios[0], 16, 0) is None
        assert capped.load(scenarios[1], 16, 0) is None
        for scenario in scenarios[2:]:
            assert capped.load(scenario, 16, 0) is not None

    def test_eviction_only_costs_a_recompute(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=1)
        scenario = _star_scenario(sizes=(16, 32))
        capped = run_scenario(scenario, jobs=1, store=store)
        assert store.stats()["entries"] == 1
        again = run_scenario(scenario, jobs=1, store=store)
        assert capped.trial_sets == again.trial_sets

    def test_cap_must_be_positive(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="max_entries"):
            ResultStore(tmp_path, max_entries=0)

    def test_env_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE_MAX", "7")
        assert ResultStore(tmp_path).max_entries == 7

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_scenario(_star_scenario(), jobs=1, store=store)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["root"] == str(tmp_path)
