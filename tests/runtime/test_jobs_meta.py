"""Satellite: the silent 1-CPU jobs clamp is surfaced in run meta.

``resolve_jobs(None)`` resolves to ``os.cpu_count()``; on a 1-CPU host
that silently turned a requested parallel sweep into a serial one.  The
resolution is now recorded in ``ScenarioRun.meta`` so callers (and CI
logs) can see exactly what ran.
"""

import pytest

from repro.runtime import Scenario, TopologySpec, run_scenario
from repro.runtime.runner import resolve_jobs


def _scenario() -> Scenario:
    return Scenario(
        name="meta-test/star",
        protocol="search-star/classical",
        topology=TopologySpec("star"),
        sizes=(8,),
        trials=1,
        seed=2,
    )


class TestResolveJobs:
    def test_none_resolves_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.runner.os.cpu_count", lambda: 1)
        assert resolve_jobs(None) == 1
        monkeypatch.setattr("repro.runtime.runner.os.cpu_count", lambda: 8)
        assert resolve_jobs(None) == 8

    def test_unknowable_cpu_count_resolves_to_one(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.runner.os.cpu_count", lambda: None)
        assert resolve_jobs(None) == 1

    def test_explicit_values_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(0)


class TestRunMetaSurfacesClamp:
    def test_one_cpu_host_clamp_is_visible(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.runner.os.cpu_count", lambda: 1)
        run = run_scenario(_scenario(), jobs=None)
        assert run.meta["jobs_requested"] is None
        assert run.meta["jobs_resolved"] == 1  # the formerly silent clamp
        assert run.meta["cpu_count"] == 1
        assert run.meta["executor"] == "pool"

    def test_explicit_jobs_recorded_verbatim(self):
        run = run_scenario(_scenario(), jobs=2)
        assert run.meta["jobs_requested"] == 2
        assert run.meta["jobs_resolved"] == 2

    def test_meta_never_affects_aggregates(self):
        # Two runs with different meta must still compare equal on the
        # data: parity tests compare .trial_sets, and meta rides along.
        serial = run_scenario(_scenario(), jobs=1)
        pooled = run_scenario(_scenario(), jobs=2)
        assert serial.trial_sets == pooled.trial_sets
        assert serial.meta != pooled.meta
