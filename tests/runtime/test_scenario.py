"""Tests for the scenario layer and the named catalogue."""

import pytest

from repro.network.topology import diameter, is_connected
from repro.runtime import (
    SCENARIOS,
    EXPERIMENT_SWEEPS,
    Scenario,
    TopologySpec,
    default_registry,
    experiment_pair,
    get_scenario,
    topology_family,
)
from repro.runtime.scenario import TOPOLOGY_FAMILIES
from repro.util.rng import RandomSource


class TestTopologySpec:
    def test_deterministic_families_need_no_rng(self):
        assert TopologySpec("complete").build(16).n == 16
        assert TopologySpec("star").build(9).n == 9
        assert TopologySpec("cycle").build(8).n == 8

    def test_hypercube_rounds_up_to_power_of_two(self):
        assert TopologySpec("hypercube").build(64).n == 64
        assert TopologySpec("hypercube").build(100).n == 128

    def test_torus_requires_square(self):
        assert TopologySpec("torus").build(49).n == 49
        with pytest.raises(ValueError, match="square"):
            TopologySpec("torus").build(50)

    def test_lollipop_and_barbell_sizes(self):
        assert TopologySpec("lollipop").build(24).n == 24
        assert TopologySpec("barbell").build(20).n == 20

    def test_random_family_consumes_trial_rng(self):
        spec = TopologySpec("erdos-renyi", (("p", 0.3),))
        assert spec.consumes_trial_rng
        topology = spec.build(20, RandomSource(0))
        assert topology.n == 20
        assert is_connected(topology)

    def test_random_family_without_rng_raises(self):
        with pytest.raises(ValueError, match="needs an rng"):
            TopologySpec("erdos-renyi").build(16)

    def test_fixed_seed_shares_graph_across_trials(self):
        spec = TopologySpec("erdos-renyi", (("p", 0.4),), fixed_seed=1000)
        assert not spec.consumes_trial_rng
        a = spec.build(24)
        b = spec.build(24)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_diameter2_family_really_has_diameter_two(self):
        topology = TopologySpec("diameter2-gnp").build(32, RandomSource(1))
        assert diameter(topology) == 2

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown topology family"):
            topology_family("moebius-strip")


class TestScenario:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="empty size grid"):
            Scenario(
                name="x", protocol="le-complete/quantum",
                topology=TopologySpec("complete"), sizes=(),
            )

    def test_with_overrides_merges_params(self):
        scenario = get_scenario("agreement/quantum")
        tweaked = scenario.with_overrides(
            sizes=[16, 32], trials=9, seed=77, params={"fraction": 0.5}
        )
        assert tweaked.sizes == (16, 32)
        assert tweaked.trials == 9
        assert tweaked.seed == 77
        assert tweaked.param_dict["fraction"] == 0.5
        # the original is untouched (frozen)
        assert scenario.param_dict["fraction"] == 0.3

    def test_run_trial_is_seed_deterministic(self):
        scenario = get_scenario("complete-le/quantum")
        a = scenario.run_trial(32, RandomSource(5))
        b = scenario.run_trial(32, RandomSource(5))
        assert a == b

    def test_normalize_by_missing_key_raises(self):
        scenario = Scenario(
            name="x", protocol="search-star/quantum",
            topology=TopologySpec("star"), sizes=(16,),
            normalize_by="candidates",
        )
        with pytest.raises(KeyError, match="candidates"):
            scenario.run_trial(16, RandomSource(0))


class TestCatalogue:
    def test_every_scenario_resolves(self):
        registry = default_registry()
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.protocol in registry, name
            assert scenario.topology.family in TOPOLOGY_FAMILIES, name
            assert scenario.description, name

    def test_experiment_sweeps_point_at_real_scenarios(self):
        for experiment_id, (quantum_name, classical_name) in EXPERIMENT_SWEEPS.items():
            quantum, classical = experiment_pair(experiment_id)
            assert quantum.name == quantum_name
            assert classical.name == classical_name
            assert default_registry().get(quantum.protocol).side == "quantum"
            assert default_registry().get(classical.protocol).side == "classical"

    def test_unmapped_experiment_mentions_bench(self):
        with pytest.raises(KeyError, match="bench"):
            experiment_pair("E2")

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("le-donut/quantum")
