"""Tests for the classical AMP18 agreement baselines."""

import pytest

from repro.classical.agreement.amp18 import (
    classical_agreement_private,
    classical_agreement_shared,
    default_epsilon_classical,
    default_inform_width_classical,
)
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource, SharedCoin


def _inputs(n, ones):
    return [1] * ones + [0] * (n - ones)


class TestPrivateCoinProtocol:
    def test_valid_agreement(self):
        successes = sum(
            classical_agreement_private(_inputs(128, 40), RandomSource(s)).success
            for s in range(20)
        )
        assert successes >= 19

    def test_single_decider(self):
        result = classical_agreement_private(_inputs(64, 20), RandomSource(0))
        assert len(result.decided_nodes) <= 1

    def test_decided_value_is_leaders_input(self):
        result = classical_agreement_private(_inputs(64, 20), RandomSource(1))
        if result.decided_nodes:
            leader = result.meta["leader"]
            assert result.decisions[leader] == result.inputs[leader]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            classical_agreement_private([0, 2], RandomSource(0))


class TestSharedCoinProtocol:
    def test_valid_agreement_many_seeds(self):
        successes = sum(
            classical_agreement_shared(_inputs(128, 40), RandomSource(s)).success
            for s in range(20)
        )
        assert successes >= 19

    def test_unanimous_validity(self):
        for seed in range(10):
            result = classical_agreement_shared(_inputs(64, 64), RandomSource(seed))
            if result.decided_nodes:
                assert result.agreed_value == 1

    def test_reproducible_with_explicit_coin(self):
        a = classical_agreement_shared(
            _inputs(64, 30), RandomSource(4), shared_coin=SharedCoin(RandomSource(8))
        )
        b = classical_agreement_shared(
            _inputs(64, 30), RandomSource(4), shared_coin=SharedCoin(RandomSource(8))
        )
        assert a.decisions == b.decisions

    def test_defaults(self):
        # Large n: ε = n^(−1/5); small n: clamped at 1/20.
        assert default_epsilon_classical(10**10) == pytest.approx(0.01)
        assert default_epsilon_classical(32) <= 1 / 20
        assert default_inform_width_classical(1024) == pytest.approx(
            round(1024**0.4), abs=1
        )

    def test_estimation_cost_is_inverse_epsilon_squared(self):
        costs = {}
        for eps in (0.05, 0.025):
            result = classical_agreement_shared(
                _inputs(256, 100),
                RandomSource(5),
                epsilon=eps,
                estimation_alpha=0.1,
                detection_alpha=0.1,
            )
            costs[eps] = result.meta["samples"]
        assert costs[0.025] == pytest.approx(4 * costs[0.05], rel=0.1)

    def test_zero_candidates_fault(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = classical_agreement_shared(
            _inputs(64, 20), RandomSource(0), faults=faults
        )
        assert not result.success

    def test_ledger_phases(self):
        result = classical_agreement_shared(_inputs(128, 50), RandomSource(6))
        labels = result.metrics.ledger.messages_by_label()
        assert "amp18.estimation" in labels
        assert "amp18.inform" in labels
