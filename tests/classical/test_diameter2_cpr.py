"""Tests for the classical diameter-2 LE baseline."""

from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.network import graphs
from repro.util.rng import RandomSource


class TestCorrectness:
    def test_dense_random_diameter2(self):
        successes = 0
        for seed in range(15):
            rng = RandomSource(seed)
            topology = graphs.diameter_two_gnp(64, rng.spawn())
            successes += classical_le_diameter2(topology, rng.spawn()).success
        assert successes >= 14

    def test_wheel(self):
        result = classical_le_diameter2(graphs.wheel(30), RandomSource(1))
        assert len(result.elected) == 1

    def test_star_adjacent_candidates(self):
        """On a star every pair of leaves shares the hub; the hub itself is
        adjacent to everyone."""
        successes = sum(
            classical_le_diameter2(graphs.star(40), RandomSource(seed)).success
            for seed in range(10)
        )
        assert successes >= 9

    def test_complete_bipartite(self):
        result = classical_le_diameter2(
            graphs.complete_bipartite(20, 20), RandomSource(2)
        )
        assert len(result.elected) == 1


class TestCost:
    def test_three_rounds(self):
        rng = RandomSource(3)
        topology = graphs.diameter_two_gnp(48, rng.spawn())
        assert classical_le_diameter2(topology, rng.spawn()).rounds == 3

    def test_messages_scale_with_candidate_degrees(self):
        """Θ(n) per candidate on dense diameter-2 graphs."""
        rng = RandomSource(4)
        topology = graphs.erdos_renyi(128, 0.5, rng.spawn())
        result = classical_le_diameter2(topology, rng.spawn())
        candidates = result.meta["candidates"]
        if candidates:
            per_candidate = result.messages / candidates
            # every candidate floods ~deg ≈ n/2 and gets as many replies
            assert 0.5 * 128 * 0.5 < per_candidate < 2.5 * 128
