"""Tests for the classical KPP+15b complete-graph LE baseline."""

import math

import pytest

from repro.classical.leader_election.complete_kpp import (
    classical_le_complete,
    default_referees_complete,
)
from repro.util.rng import RandomSource


class TestCorrectness:
    def test_unique_leader_many_seeds(self):
        successes = sum(
            classical_le_complete(128, RandomSource(seed)).success
            for seed in range(30)
        )
        assert successes >= 29

    def test_statuses_all_terminal(self):
        from repro.network.node import Status

        result = classical_le_complete(64, RandomSource(0))
        assert all(
            s in (Status.ELECTED, Status.NON_ELECTED)
            for s in result.statuses.values()
        )

    def test_small_network(self):
        result = classical_le_complete(4, RandomSource(1))
        assert len(result.elected) <= 1


class TestCost:
    def test_runs_in_three_rounds(self):
        result = classical_le_complete(256, RandomSource(2))
        assert result.rounds == 3

    def test_message_count_near_candidates_times_referees(self):
        result = classical_le_complete(512, RandomSource(3))
        candidates = result.meta["candidates"]
        referees = result.meta["referees"]
        # rank messages + replies: candidates × referees ≤ msgs ≤ 2 × that
        assert candidates * referees <= result.messages <= 2 * candidates * referees

    def test_default_referee_count_scales_sqrt(self):
        assert default_referees_complete(10_000) == pytest.approx(
            2 * math.sqrt(10_000 * math.log(10_000)), abs=2
        )

    def test_sqrt_scaling_of_messages(self):
        small = classical_le_complete(256, RandomSource(4))
        large = classical_le_complete(4096, RandomSource(4))
        per_candidate_small = small.messages / max(1, small.meta["candidates"])
        per_candidate_large = large.messages / max(1, large.meta["candidates"])
        ratio = per_candidate_large / per_candidate_small
        # √(4096·ln4096)/√(256·ln256) ≈ 4.9
        assert 3.5 < ratio < 6.5


class TestValidation:
    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            classical_le_complete(1, RandomSource(0))

    def test_rejects_bad_referee_count(self):
        with pytest.raises(ValueError):
            classical_le_complete(8, RandomSource(0), referees=8)
