"""Tests for the classical Borůvka MST baseline."""

import networkx as nx
import pytest

from repro.classical.mst_boruvka import classical_mst
from repro.network import graphs
from repro.util.rng import RandomSource


def _weights(topology, rng):
    return {e: float(rng.uniform_int(1, 10**6)) for e in topology.edges()}


def _truth(weights):
    g = nx.Graph()
    for (u, v), w in weights.items():
        g.add_edge(u, v, weight=w)
    return sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(g).edges(data=True)
    )


class TestClassicalMST:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_mst_on_random_graphs(self, seed):
        rng = RandomSource(seed)
        topology = graphs.erdos_renyi(36, 0.2, rng.spawn())
        weights = _weights(topology, rng.spawn())
        result = classical_mst(topology, weights, rng.spawn())
        assert result.is_spanning
        assert result.total_weight == pytest.approx(_truth(weights))

    def test_deterministic_given_weights(self):
        rng = RandomSource(9)
        topology = graphs.torus(4, 4)
        weights = _weights(topology, rng.spawn())
        a = classical_mst(topology, weights, RandomSource(1))
        b = classical_mst(topology, weights, RandomSource(2))
        assert a.total_weight == b.total_weight
        assert a.messages == b.messages  # probe-all-ports is deterministic

    def test_probe_cost_is_theta_m_per_phase(self):
        rng = RandomSource(3)
        topology = graphs.erdos_renyi(48, 0.3, rng.spawn())
        weights = _weights(topology, rng.spawn())
        result = classical_mst(topology, weights, rng.spawn())
        probes = result.metrics.ledger.messages_by_label()[
            "classical-mst.probe-all-ports"
        ]
        assert probes == 4 * topology.edge_count() * result.meta["phases"]

    def test_rejects_missing_weights(self):
        with pytest.raises(ValueError):
            classical_mst(graphs.path(3), {}, RandomSource(0))

    def test_quantum_cheaper_on_dense_graphs(self):
        """The E10 claim, at unit-test scale: √m vs m per phase."""
        from repro.core.leader_election.mst import quantum_mst

        rng = RandomSource(4)
        topology = graphs.erdos_renyi(96, 0.8, rng.spawn())
        weights = _weights(topology, rng.spawn())
        quantum = quantum_mst(topology, weights, rng.spawn(), alpha=1 / 8)
        classical = classical_mst(topology, weights, rng.spawn())
        assert quantum.total_weight == pytest.approx(classical.total_weight)
        q_rate = quantum.messages / quantum.meta["phases"]
        c_rate = classical.messages / classical.meta["phases"]
        assert q_rate < c_rate
