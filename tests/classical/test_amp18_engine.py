"""Tests for the engine-driven [AMP18] agreement protocol."""

import pytest

from repro.adversary import AdversarySpec
from repro.classical.agreement.amp18_engine import (
    classical_agreement_engine,
    default_epsilon_engine,
    default_inform_width_engine,
    default_probes_engine,
    default_samples_engine,
)
from repro.network.topology import CompleteTopology
from repro.runtime import default_registry
from repro.util.rng import RandomSource


class TestDefaults:
    def test_epsilon_clamped(self):
        assert 0.1 <= default_epsilon_engine(4) <= 0.45
        assert 0.1 <= default_epsilon_engine(10**6) <= 0.45

    @pytest.mark.parametrize("n", [4, 16, 64, 256, 1024])
    def test_fanouts_fit_the_degree_bound(self, n):
        epsilon = default_epsilon_engine(n)
        width = default_inform_width_engine(n)
        assert 1 <= width <= n - 1
        assert 1 <= default_samples_engine(n, epsilon) <= n - 1
        assert 1 <= default_probes_engine(n, width) <= n - 1


class TestProtocol:
    def test_validity_on_benign_inputs(self):
        # Deterministic seeds; agreement must settle on a real input value.
        for seed in range(5):
            inputs = [1] * 8 + [0] * 24
            result = classical_agreement_engine(inputs, RandomSource(seed))
            if result.success:
                assert result.agreed_value in (0, 1)
            for v, decision in result.decisions.items():
                if decision is not None:
                    assert decision in (0, 1)

    def test_unanimous_inputs_never_decide_the_other_value(self):
        for seed in range(4):
            result = classical_agreement_engine(
                [0] * 24, RandomSource(seed)
            )
            assert all(
                d in (None, 0) for d in result.decisions.values()
            )
            result = classical_agreement_engine([1] * 24, RandomSource(seed))
            assert all(d in (None, 1) for d in result.decisions.values())

    def test_charges_real_engine_rounds_and_messages(self):
        result = classical_agreement_engine([1] * 8 + [0] * 16, RandomSource(1))
        assert result.rounds == 2 * result.meta["iterations"] + 3
        assert result.messages > 0
        assert result.meta["candidates"] >= 0

    def test_input_validation(self):
        with pytest.raises(ValueError, match="0/1"):
            classical_agreement_engine([0, 1, 2], RandomSource(0))
        with pytest.raises(ValueError, match="n >= 3"):
            classical_agreement_engine([0, 1], RandomSource(0))
        with pytest.raises(ValueError, match="node_api"):
            classical_agreement_engine(
                [0, 1, 1, 0], RandomSource(0), node_api="vector"
            )

    def test_fault_accounting_under_drops(self):
        result = classical_agreement_engine(
            [1] * 8 + [0] * 16,
            RandomSource(2),
            adversary=AdversarySpec(drop_rate=0.2),
        )
        assert result.meta["fault_messages_dropped"] > 0
        assert "undelivered_dropped_adversary" in result.meta

    def test_crashes_reduce_participants(self):
        result = classical_agreement_engine(
            [1] * 8 + [0] * 16,
            RandomSource(3),
            adversary=AdversarySpec(crash_count=4, crash_by=2),
        )
        assert result.meta["fault_nodes_crashed"] == 4


class TestRegistryIntegration:
    def test_registered_with_capability_tags(self):
        spec = default_registry().get("agreement/amp18-engine")
        assert set(spec.supports) == {"batch", "faults", "inputs", "adaptive"}

    def test_runs_through_the_registry(self):
        spec = default_registry().get("agreement/amp18-engine")
        outcome = spec.run(
            CompleteTopology(24), RandomSource(0), node_api="batch"
        )
        assert outcome.rounds > 0
        assert "candidates" in outcome.extra
