"""Tests for the ring leader-election protocols (engine demonstrators)."""

import math

import pytest

from repro.classical.leader_election.ring import hirschberg_sinclair_ring, lcr_ring
from repro.util.rng import RandomSource


class TestLCR:
    @pytest.mark.parametrize("n", [3, 5, 16, 64])
    def test_elects_unique_leader(self, n):
        result = lcr_ring(n, RandomSource(n))
        assert result.success

    def test_many_seeds(self):
        successes = sum(lcr_ring(24, RandomSource(s)).success for s in range(20))
        assert successes == 20

    def test_message_bound_quadratic_worst_case(self):
        result = lcr_ring(32, RandomSource(0))
        assert result.messages <= 32 * 32 + 3 * 32  # O(n²) + halt lap

    def test_rounds_linear(self):
        result = lcr_ring(40, RandomSource(1))
        assert result.rounds <= 3 * 40 + 4

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            lcr_ring(2, RandomSource(0))


class TestHirschbergSinclair:
    @pytest.mark.parametrize("n", [3, 6, 17, 64])
    def test_elects_unique_leader(self, n):
        result = hirschberg_sinclair_ring(n, RandomSource(n + 100))
        assert result.success

    def test_many_seeds(self):
        successes = sum(
            hirschberg_sinclair_ring(24, RandomSource(s)).success
            for s in range(20)
        )
        assert successes == 20

    def test_message_bound_n_log_n(self):
        n = 64
        result = hirschberg_sinclair_ring(n, RandomSource(2))
        # 8n per phase, ceil(log2 n)+1 phases, plus halt lap and slack.
        bound = 10 * n * (math.ceil(math.log2(n)) + 2)
        assert result.messages <= bound

    def test_hs_beats_lcr_asymptotically_on_bad_orders(self):
        """On average random ids LCR is fine, but HS has the better worst-case
        guarantee; check both complete and compare messages at larger n."""
        n = 128
        lcr = lcr_ring(n, RandomSource(3))
        hs = hirschberg_sinclair_ring(n, RandomSource(3))
        assert lcr.success and hs.success
