"""Tests for the classical GHS-style general-graph LE baseline."""

from repro.classical.leader_election.general_ghs import classical_le_general
from repro.network import graphs
from repro.util.rng import RandomSource


class TestCorrectness:
    def test_random_graphs(self):
        for seed in range(8):
            rng = RandomSource(seed)
            topology = graphs.erdos_renyi(48, 0.15, rng.spawn())
            result = classical_le_general(topology, rng.spawn())
            assert result.success
            assert result.explicit_success

    def test_path_and_cycle(self):
        assert classical_le_general(graphs.path(20), RandomSource(0)).explicit_success
        assert classical_le_general(graphs.cycle(20), RandomSource(1)).explicit_success

    def test_deterministic_structure_same_leader_for_same_seed(self):
        a = classical_le_general(graphs.torus(4, 4), RandomSource(5))
        b = classical_le_general(graphs.torus(4, 4), RandomSource(5))
        assert a.leader == b.leader
        assert a.messages == b.messages


class TestCost:
    def test_messages_theta_m_per_phase(self):
        rng = RandomSource(2)
        topology = graphs.erdos_renyi(64, 0.3, rng.spawn())
        result = classical_le_general(topology, rng.spawn())
        m = topology.edge_count()
        phases = result.meta["phases"]
        probe = result.metrics.ledger.messages_by_label()["ghs-le.probe-all-ports"]
        assert probe == 4 * m * phases

    def test_phases_logarithmic(self):
        result = classical_le_general(graphs.cycle(64), RandomSource(3))
        assert result.meta["phases"] <= 10
