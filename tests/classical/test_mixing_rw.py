"""Tests for the classical random-walk LE baseline."""

from repro.classical.leader_election.mixing_rw import (
    classical_le_mixing,
    default_walks_mixing,
)
from repro.network import graphs
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestCorrectness:
    def test_hypercube_many_seeds(self):
        successes = sum(
            classical_le_mixing(
                graphs.hypercube(6), RandomSource(seed), tau=15
            ).success
            for seed in range(20)
        )
        assert successes >= 19

    def test_expander(self):
        rng = RandomSource(1)
        topology = graphs.random_regular(80, 6, rng.spawn())
        result = classical_le_mixing(topology, rng.spawn(), tau=20)
        assert result.success

    def test_leader_is_top_candidate(self):
        result = classical_le_mixing(graphs.hypercube(6), RandomSource(2), tau=15)
        if result.success:
            assert result.leader == result.meta["highest_ranked"]


class TestCost:
    def test_walk_count_default(self):
        assert default_walks_mixing(100) >= 2 * 10  # ≥ 2√n

    def test_messages_scale_linearly_with_tau(self):
        costs = {}
        for tau in (8, 16):
            result = classical_le_mixing(
                graphs.hypercube(6), RandomSource(3), tau=tau, walks=10
            )
            costs[tau] = result.messages
        assert 1.7 < costs[16] / costs[8] < 2.3

    def test_ledger_has_both_walk_phases(self):
        result = classical_le_mixing(graphs.hypercube(5), RandomSource(4), tau=8)
        labels = result.metrics.ledger.messages_by_label()
        assert "rw-le.referee-walks" in labels
        assert "rw-le.query-walks" in labels


class TestFaults:
    def test_zero_candidates(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = classical_le_mixing(
            graphs.hypercube(4), RandomSource(0), tau=5, faults=faults
        )
        assert result.elected == []
