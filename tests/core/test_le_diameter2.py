"""Tests for QuantumQWLE (Algorithm 3) on diameter-2 networks."""

import pytest

from repro.core.leader_election.diameter2 import (
    QWLEParameters,
    default_k_diameter2,
    quantum_qwle,
)
from repro.network import graphs
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

#: Lightened schedule for fast tests — same structure, smaller constants.
LEAN = QWLEParameters(alpha=1 / 64, inner_alpha=1 / 64)


class TestCorrectness:
    def test_random_diameter2_graphs_many_seeds(self):
        successes = 0
        for seed in range(15):
            rng = RandomSource(seed)
            topology = graphs.diameter_two_gnp(48, rng.spawn())
            result = quantum_qwle(topology, rng.spawn())
            successes += result.success
        assert successes >= 14

    def test_wheel_graph(self):
        rng = RandomSource(3)
        result = quantum_qwle(graphs.wheel(40), rng)
        assert len(result.elected) == 1

    def test_complete_bipartite(self):
        rng = RandomSource(4)
        result = quantum_qwle(graphs.complete_bipartite(24, 24), rng)
        assert len(result.elected) == 1

    def test_star_graph_leaf_candidates(self):
        """Star: leaves have degree 1 (< 2), so they cannot referee and stay
        candidates; the protocol still terminates with >= 1 leader among
        them."""
        rng = RandomSource(5)
        result = quantum_qwle(graphs.star(32), rng)
        assert len(result.elected) >= 1

    def test_top_candidate_never_eliminated(self):
        for seed in range(10):
            rng = RandomSource(seed)
            topology = graphs.diameter_two_gnp(40, rng.spawn())
            result = quantum_qwle(topology, rng.spawn(), LEAN)
            if result.success:
                assert result.leader == result.meta["highest_ranked"]


class TestParameters:
    def test_default_k(self):
        assert default_k_diameter2(1000) == 100

    def test_resolve_fills_defaults(self):
        params = QWLEParameters().resolve(256)
        assert params.k == default_k_diameter2(256)
        assert params.alpha == pytest.approx(1 / 256**2)
        assert params.inner_alpha == pytest.approx(1 / 256**3)
        assert params.outer_iterations >= 8
        assert 0 < params.activation <= 0.5

    def test_explicit_overrides_respected(self):
        params = QWLEParameters(k=7, outer_iterations=3).resolve(100)
        assert params.k == 7
        assert params.outer_iterations == 3

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            quantum_qwle(graphs.path(2), RandomSource(0))

    def test_rounds_deterministic_schedule(self):
        rng1 = RandomSource(1)
        topology = graphs.diameter_two_gnp(32, rng1.spawn())
        rounds = set()
        params = QWLEParameters(outer_iterations=20)
        for seed in range(3):
            result = quantum_qwle(topology, RandomSource(seed), params)
            if result.meta.get("candidates", 0) > 0:
                rounds.add(result.rounds)
        # Schedule is iteration-count × worst-case; candidate-set dependence
        # enters only through degrees, identical here.
        assert len(rounds) <= 2


class TestCostStructure:
    def test_ledger_contains_walk_phases(self):
        rng = RandomSource(8)
        topology = graphs.diameter_two_gnp(48, rng.spawn())
        result = quantum_qwle(topology, rng.spawn(), LEAN)
        labels = result.metrics.ledger.messages_by_label()
        assert "qwle.walk.checking.decentralized" in labels
        if result.meta["walk_searches"] > 0:
            assert "qwle.walk.setup" in labels
            assert "qwle.walk.update" in labels
            assert "qwle.walk.checking.centralized" in labels

    def test_decentralized_cost_charged_even_when_idle(self):
        """Passive candidates run their searches without being notified."""
        rng = RandomSource(9)
        topology = graphs.diameter_two_gnp(40, rng.spawn())
        params = QWLEParameters(
            alpha=1 / 64, inner_alpha=1 / 64, activation=0.0, outer_iterations=5
        )
        result = quantum_qwle(topology, rng.spawn(), params)
        labels = result.metrics.ledger.messages_by_label()
        assert result.meta["walk_searches"] == 0
        assert labels.get("qwle.walk.checking.decentralized", 0) > 0


class TestFaultPaths:
    def test_zero_candidates(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        rng = RandomSource(0)
        topology = graphs.diameter_two_gnp(32, rng.spawn())
        result = quantum_qwle(topology, rng.spawn(), faults=faults)
        assert result.elected == []

    def test_walk_false_negatives_leave_all_candidates(self):
        faults = FaultInjector()
        faults.force_always("walk.false_negative")
        rng = RandomSource(1)
        topology = graphs.diameter_two_gnp(32, rng.spawn())
        result = quantum_qwle(topology, rng.spawn(), LEAN, faults=faults)
        assert len(result.elected) == result.meta["candidates"]
