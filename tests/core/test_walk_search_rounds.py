"""Round-accounting tests for WalkSearch with round-charging hooks."""

from repro.core.walk_search import WalkSearchSpec, walk_search
from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.util.rng import RandomSource


def _spec_with_rounds(marked_fraction, epsilon=0.04, delta=0.1):
    """Hooks that charge both messages and rounds (like QWLE's real ones)."""
    return WalkSearchSpec(
        marked_fraction=marked_fraction,
        epsilon=epsilon,
        delta=delta,
        charge_setup=lambda m, c: m.charge("w.setup", messages=5 * c, rounds=1 * c),
        charge_update=lambda m, c: m.charge("w.update", messages=2 * c, rounds=2 * c),
        charge_checking=lambda m, c: m.charge("w.check", messages=4 * c, rounds=3 * c),
        sample_marked_state=lambda r: "state",
    )


class TestRoundDeterminism:
    def test_rounds_equal_full_schedule_regardless_of_outcome(self):
        epsilon, delta, alpha = 0.04, 0.1, 0.1
        t1 = worst_case_iterations(epsilon)
        t2 = worst_case_iterations(delta)
        attempts = attempts_for_confidence(alpha)
        expected_rounds = attempts * (1 + t1 * (2 * t2 + 2 * 3))

        for marked in (0.0, 0.04, 1.0):
            for seed in range(5):
                metrics = MetricsRecorder()
                walk_search(
                    _spec_with_rounds(marked, epsilon, delta),
                    alpha,
                    metrics,
                    RandomSource(seed),
                )
                assert metrics.rounds == expected_rounds, (marked, seed)

    def test_idle_rounds_carry_no_messages(self):
        """A hit on the first attempt leaves later attempts message-free."""
        metrics = MetricsRecorder()
        walk_search(_spec_with_rounds(1.0), 0.01, metrics, RandomSource(0))
        labels = metrics.ledger.messages_by_label()
        t1 = worst_case_iterations(0.04)
        # exactly one attempt's worth of setup messages
        assert labels["w.setup"] == 5
        assert labels["w.check"] == 4 * t1 * 2
        idle = [
            entry
            for entry in metrics.ledger.entries
            if entry.label == "walk-search.synchronized-idle"
        ]
        assert idle and all(e.messages == 0 for e in idle)
        assert all(e.rounds > 0 for e in idle)
