"""Tests for the conjectured τ-linear RWLE variant (Conclusion's open question)."""

import pytest

from repro.core.leader_election.mixing import CHECKING_MODES, quantum_rwle
from repro.network import graphs
from repro.util.rng import RandomSource


class TestConjecturedVariant:
    def test_modes_registry(self):
        assert "centralized" in CHECKING_MODES
        assert "conjectured-decentralized" in CHECKING_MODES

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            quantum_rwle(
                graphs.hypercube(4), RandomSource(0), tau=4, checking_mode="bogus"
            )

    def test_still_elects_unique_leader(self):
        successes = sum(
            quantum_rwle(
                graphs.hypercube(6),
                RandomSource(seed),
                tau=12,
                checking_mode="conjectured-decentralized",
            ).success
            for seed in range(15)
        )
        assert successes >= 14

    def test_cheaper_than_proven_protocol(self):
        """Linear-in-τ Checking must undercut the τ² centralized one."""
        topology = graphs.hypercube(7)
        proven = quantum_rwle(topology, RandomSource(0), tau=40, k=8)
        conjectured = quantum_rwle(
            topology,
            RandomSource(0),
            tau=40,
            k=8,
            checking_mode="conjectured-decentralized",
        )
        assert conjectured.messages < proven.messages
        assert conjectured.meta["checking_mode"] == "conjectured-decentralized"

    def test_tau_growth_is_linear_not_quadratic(self):
        """Per-candidate quantum-phase cost grows ≈ τ, not ≈ τ²."""
        costs = {}
        for tau in (16, 64):
            result = quantum_rwle(
                graphs.hypercube(6),
                RandomSource(1),
                tau=tau,
                k=4,
                alpha=0.1,
                checking_mode="conjectured-decentralized",
            )
            grover = result.metrics.ledger.messages_by_label()[
                "quantum-rwle.grover.checking"
            ]
            costs[tau] = grover / result.meta["candidates"]
        ratio = costs[64] / costs[16]
        assert 2.5 < ratio < 6.5  # ~4x for 4x tau (quadratic would be ~16x)

    def test_default_mode_is_the_proven_one(self):
        result = quantum_rwle(graphs.hypercube(4), RandomSource(2), tau=4)
        assert result.meta["checking_mode"] == "centralized"
