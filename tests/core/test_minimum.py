"""Tests for distributed Dürr–Høyer minimum finding."""

import pytest

from repro.core.minimum import MinimumOracle, quantum_minimum
from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource


def _oracle_for(values: list[float], messages: int = 2):
    indexed = list(range(len(values)))

    def count_below(threshold):
        if threshold is None:
            return len(indexed)
        return sum(1 for i in indexed if values[i] < threshold)

    def sample_below(threshold, rng):
        pool = (
            indexed
            if threshold is None
            else [i for i in indexed if values[i] < threshold]
        )
        return pool[rng.uniform_int(0, len(pool) - 1)]

    return MinimumOracle(
        domain_size=len(values),
        count_below=count_below,
        sample_below=sample_below,
        value_of=lambda i: values[i],
        charge_checking=lambda m, c: m.charge("min.checking", messages=messages * c),
    )


class TestCorrectness:
    def test_finds_unique_minimum(self):
        values = [5.0, 2.0, 9.0, 1.0, 7.0]
        for seed in range(30):
            result = quantum_minimum(
                _oracle_for(values), 0.01, MetricsRecorder(), RandomSource(seed)
            )
            assert result.minimizer == 3
            assert result.value == 1.0

    def test_single_element_domain(self):
        result = quantum_minimum(
            _oracle_for([4.2]), 0.1, MetricsRecorder(), RandomSource(0)
        )
        assert result.minimizer == 0

    def test_larger_domain(self):
        rng = RandomSource(3)
        values = [float(v) for v in rng.generator.permutation(200)]
        result = quantum_minimum(
            _oracle_for(values), 0.01, MetricsRecorder(), RandomSource(9)
        )
        assert values[result.minimizer] == 0.0

    def test_duplicate_minima_any_is_fine(self):
        values = [3.0, 1.0, 1.0, 5.0]
        result = quantum_minimum(
            _oracle_for(values), 0.05, MetricsRecorder(), RandomSource(2)
        )
        assert result.minimizer in (1, 2)


class TestCost:
    def test_messages_match_charged_calls(self):
        metrics = MetricsRecorder()
        result = quantum_minimum(
            _oracle_for(list(map(float, range(64)))), 0.1, metrics, RandomSource(0)
        )
        assert metrics.messages == 2 * result.checking_calls

    def test_messages_bounded_by_budget(self):
        """Adaptive messaging never exceeds the Dürr–Høyer budget ~22.5√N."""
        import math

        from repro.quantum.amplitude import attempts_for_confidence

        size = 100
        metrics = MetricsRecorder()
        quantum_minimum(
            _oracle_for(list(map(float, range(size)))), 0.1, metrics, RandomSource(2)
        )
        budget = math.ceil(22.5 * math.sqrt(size)) * attempts_for_confidence(0.1)
        assert metrics.messages <= 2 * 2 * budget

    def test_cost_grows_sublinearly_in_domain(self):
        """Average spent iterations grow like √N, not N."""
        def average_cost(size):
            total = 0
            for seed in range(20):
                metrics = MetricsRecorder()
                quantum_minimum(
                    _oracle_for(list(map(float, range(size)))),
                    0.1,
                    metrics,
                    RandomSource(seed),
                )
                total += metrics.messages
            return total / 20

        small, large = average_cost(16), average_cost(256)
        growth = large / small
        assert growth < 16  # strictly sublinear in the 16x domain growth
        assert growth > 1.2  # but not flat either

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            quantum_minimum(
                _oracle_for([1.0]), 1.5, MetricsRecorder(), RandomSource(0)
            )
