"""Tests for result dataclasses."""

from repro.core.results import AgreementResult, LeaderElectionResult
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status


def _statuses(n, elected=()):
    return {
        v: (Status.ELECTED if v in elected else Status.NON_ELECTED)
        for v in range(n)
    }


class TestLeaderElectionResult:
    def test_unique_leader_success(self):
        result = LeaderElectionResult(4, _statuses(4, {2}), MetricsRecorder())
        assert result.success
        assert result.leader == 2
        assert result.elected == [2]

    def test_no_leader_fails(self):
        result = LeaderElectionResult(3, _statuses(3), MetricsRecorder())
        assert not result.success
        assert result.leader is None

    def test_two_leaders_fail(self):
        result = LeaderElectionResult(4, _statuses(4, {0, 1}), MetricsRecorder())
        assert not result.success
        assert result.leader is None

    def test_undecided_node_fails(self):
        statuses = _statuses(3, {0})
        statuses[2] = Status.UNDECIDED
        result = LeaderElectionResult(3, statuses, MetricsRecorder())
        assert not result.success

    def test_explicit_success_requires_known_leader(self):
        result = LeaderElectionResult(3, _statuses(3, {1}), MetricsRecorder())
        assert not result.explicit_success
        result.known_leader = {0: 1, 1: 1, 2: 1}
        assert result.explicit_success

    def test_explicit_fails_on_wrong_knowledge(self):
        result = LeaderElectionResult(
            3, _statuses(3, {1}), MetricsRecorder(), known_leader={0: 1, 1: 1, 2: 0}
        )
        assert not result.explicit_success

    def test_messages_and_rounds_proxy_metrics(self):
        metrics = MetricsRecorder()
        metrics.charge("x", messages=5, rounds=2)
        result = LeaderElectionResult(2, _statuses(2, {0}), metrics)
        assert result.messages == 5
        assert result.rounds == 2


class TestAgreementResult:
    def _result(self, inputs, decisions):
        return AgreementResult(
            n=len(inputs),
            inputs={v: b for v, b in enumerate(inputs)},
            decisions={v: decisions.get(v) for v in range(len(inputs))},
            metrics=MetricsRecorder(),
        )

    def test_valid_agreement(self):
        result = self._result([0, 1, 1], {0: 1, 2: 1})
        assert result.success
        assert result.agreed_value == 1
        assert sorted(result.decided_nodes) == [0, 2]

    def test_single_decider_is_valid(self):
        result = self._result([0, 1], {1: 0})
        assert result.success

    def test_nobody_decided_fails(self):
        result = self._result([0, 1], {})
        assert not result.success

    def test_disagreement_fails(self):
        result = self._result([0, 1], {0: 0, 1: 1})
        assert not result.success
        assert result.agreed_value is None

    def test_validity_violation_fails(self):
        """Deciding a value nobody held as input is invalid."""
        result = self._result([0, 0, 0], {1: 1})
        assert not result.success
