"""Tests for candidate sampling (Fact C.2 machinery)."""

import math

import pytest

from repro.core.candidates import (
    candidate_probability,
    draw_candidates,
    rank_space,
)
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestParameters:
    def test_probability_formula(self):
        n = 1000
        assert candidate_probability(n) == pytest.approx(12 * math.log(n) / n)

    def test_probability_clamped_for_tiny_n(self):
        assert candidate_probability(4) == 1.0

    def test_rank_space_is_n_fourth(self):
        assert rank_space(10) == 10_000

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            candidate_probability(1)


class TestDraw:
    def test_candidates_sorted_and_in_range(self):
        draw = draw_candidates(500, RandomSource(0))
        assert all(0 <= v < 500 for v in draw.candidates)
        assert draw.candidates == sorted(draw.candidates)

    def test_ranks_in_space(self):
        draw = draw_candidates(100, RandomSource(1))
        assert all(1 <= r <= rank_space(100) for r in draw.ranks.values())

    def test_fact_c2_holds_with_high_probability(self):
        """Over 200 draws at n = 512, the Fact C.2 event should essentially
        always hold (failure probability ≤ 1/n² each)."""
        holds = sum(
            draw_candidates(512, RandomSource(seed)).within_fact_c2()
            for seed in range(200)
        )
        assert holds >= 198

    def test_expected_candidate_count(self):
        n = 2048
        counts = [draw_candidates(n, RandomSource(s)).count for s in range(100)]
        mean = sum(counts) / len(counts)
        assert 12 * math.log(n) * 0.7 < mean < 12 * math.log(n) * 1.3

    def test_highest_ranked_is_argmax(self):
        draw = draw_candidates(300, RandomSource(3))
        top = draw.highest_ranked()
        assert draw.ranks[top] == max(draw.ranks.values())

    def test_highest_ranked_raises_when_empty(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        draw = draw_candidates(50, RandomSource(4), faults=faults)
        assert draw.count == 0
        with pytest.raises(ValueError):
            draw.highest_ranked()

    def test_custom_probability(self):
        draw = draw_candidates(100, RandomSource(5), probability=1.0)
        assert draw.count == 100

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            draw_candidates(10, RandomSource(0), probability=2.0)


class TestFaultPaths:
    def test_force_empty(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        draw = draw_candidates(64, RandomSource(0), faults=faults)
        assert draw.candidates == []

    def test_force_tie(self):
        faults = FaultInjector()
        faults.force("candidates.force_tie")
        draw = draw_candidates(64, RandomSource(1), probability=0.5, faults=faults)
        assert not draw.has_unique_ranks
        ranks = sorted(draw.ranks.values())
        assert ranks[-1] == ranks[-2]  # the top two tie

    def test_tie_noop_with_single_candidate(self):
        faults = FaultInjector()
        faults.force("candidates.force_tie")
        draw = draw_candidates(64, RandomSource(2), probability=0.0, faults=faults)
        assert draw.count == 0  # nothing to tie; no crash
