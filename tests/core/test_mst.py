"""Tests for QuantumMST (Section 5.4 extension)."""

import networkx as nx
import pytest

from repro.core.leader_election.mst import quantum_mst
from repro.network import graphs
from repro.util.rng import RandomSource


def _random_weights(topology, rng):
    return {
        (u, v): float(rng.uniform_int(1, 10**6))
        for u, v in topology.edges()
    }


def _networkx_mst_weight(topology, weights):
    g = nx.Graph()
    for (u, v), w in weights.items():
        g.add_edge(u, v, weight=w)
    tree = nx.minimum_spanning_tree(g, algorithm="boruvka")
    return sum(d["weight"] for _, _, d in tree.edges(data=True))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        rng = RandomSource(seed)
        topology = graphs.erdos_renyi(40, 0.2, rng.spawn())
        weights = _random_weights(topology, rng.spawn())
        result = quantum_mst(topology, weights, rng.spawn())
        assert result.is_spanning
        assert result.total_weight == pytest.approx(
            _networkx_mst_weight(topology, weights)
        )

    def test_path_graph_trivial_mst(self):
        topology = graphs.path(10)
        weights = {e: 1.0 for e in topology.edges()}
        result = quantum_mst(topology, weights, RandomSource(0))
        assert result.is_spanning
        assert result.total_weight == 9.0

    def test_handles_duplicate_weights(self):
        """Lexicographic tie-breaking keeps Borůvka cycle-free."""
        topology = graphs.complete(12)
        weights = {e: 5.0 for e in topology.edges()}
        result = quantum_mst(topology, weights, RandomSource(1))
        assert result.is_spanning
        assert result.total_weight == 55.0

    def test_tree_edges_are_graph_edges(self):
        rng = RandomSource(2)
        topology = graphs.torus(4, 4)
        weights = _random_weights(topology, rng.spawn())
        result = quantum_mst(topology, weights, rng.spawn())
        for u, v in result.edges:
            assert topology.has_edge(u, v)

    def test_mst_edges_form_spanning_tree(self):
        rng = RandomSource(3)
        topology = graphs.erdos_renyi(30, 0.25, rng.spawn())
        weights = _random_weights(topology, rng.spawn())
        result = quantum_mst(topology, weights, rng.spawn())
        g = nx.Graph(result.edges)
        assert g.number_of_nodes() == 30
        assert nx.is_tree(g)


class TestValidationAndCost:
    def test_missing_weight_rejected(self):
        topology = graphs.path(3)
        with pytest.raises(ValueError):
            quantum_mst(topology, {}, RandomSource(0))

    def test_phases_logarithmic(self):
        rng = RandomSource(4)
        topology = graphs.erdos_renyi(64, 0.15, rng.spawn())
        weights = _random_weights(topology, rng.spawn())
        result = quantum_mst(topology, weights, rng.spawn())
        assert result.meta["phases"] <= 8

    def test_ledger_structure(self):
        rng = RandomSource(5)
        topology = graphs.cycle(16)
        weights = _random_weights(topology, rng.spawn())
        result = quantum_mst(topology, weights, rng.spawn())
        labels = result.metrics.ledger.messages_by_label()
        assert "mst.durr-hoyer.checking" in labels
        assert "mst.convergecast" in labels
