"""Tests for the distributed walk search (Theorem 4.4)."""

import pytest

from repro.core.walk_search import WalkSearchSpec, walk_search
from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


def _spec(marked_fraction, epsilon=0.05, delta=0.1, setup=10, update=2, checking=6):
    return WalkSearchSpec(
        marked_fraction=marked_fraction,
        epsilon=epsilon,
        delta=delta,
        charge_setup=lambda m, c: m.charge("walk.setup", messages=setup * c),
        charge_update=lambda m, c: m.charge("walk.update", messages=update * c),
        charge_checking=lambda m, c: m.charge("walk.checking", messages=checking * c),
        sample_marked_state=lambda r: "marked-state",
    )


@pytest.fixture
def rng():
    return RandomSource(55)


class TestOutcome:
    def test_finds_marked_state_under_promise(self, rng):
        result = walk_search(_spec(0.05), 0.01, MetricsRecorder(), rng)
        assert result.succeeded
        assert result.found == "marked-state"

    def test_empty_marked_set_never_found(self):
        for seed in range(40):
            result = walk_search(
                _spec(0.0), 0.25, MetricsRecorder(), RandomSource(seed)
            )
            assert not result.succeeded

    def test_failure_rate_within_alpha(self):
        alpha = 0.05
        failures = sum(
            not walk_search(
                _spec(0.05), alpha, MetricsRecorder(), RandomSource(seed)
            ).succeeded
            for seed in range(200)
        )
        assert failures / 200 <= alpha + 0.03


class TestCostAccounting:
    def test_schedule_charges_match_theorem_shape(self, rng):
        """On the never-success path every attempt is initiated, so the
        charges equal the full Theorem 4.4 schedule exactly."""
        metrics = MetricsRecorder()
        epsilon, delta, alpha = 0.04, 0.1, 0.05
        result = walk_search(_spec(0.0, epsilon, delta), alpha, metrics, rng)
        t1 = worst_case_iterations(epsilon)
        t2 = worst_case_iterations(delta)
        attempts = attempts_for_confidence(alpha)
        by_label = metrics.ledger.messages_by_label()
        assert by_label["walk.setup"] == 10 * attempts
        assert by_label["walk.update"] == 2 * attempts * t1 * t2
        assert by_label["walk.checking"] == 6 * attempts * t1 * 2
        assert result.amplification_iterations == t1
        assert result.walk_steps_per_iteration == t2

    def test_rounds_independent_of_outcome(self):
        """Hit stops messaging early, but the synchronized rounds match."""
        hit = MetricsRecorder()
        walk_search(_spec(0.5), 0.1, hit, RandomSource(0))
        miss = MetricsRecorder()
        walk_search(_spec(0.0), 0.1, miss, RandomSource(0))
        assert hit.messages <= miss.messages
        assert hit.rounds == miss.rounds

    def test_smaller_delta_more_updates(self, rng):
        fine = MetricsRecorder()
        walk_search(_spec(0.05, delta=0.01), 0.1, fine, RandomSource(1))
        coarse = MetricsRecorder()
        walk_search(_spec(0.05, delta=0.25), 0.1, coarse, RandomSource(1))
        assert (
            fine.ledger.messages_by_label()["walk.update"]
            > coarse.ledger.messages_by_label()["walk.update"]
        )


class TestValidationAndFaults:
    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            walk_search(_spec(0.1, epsilon=0.0), 0.1, MetricsRecorder(), rng)
        with pytest.raises(ValueError):
            walk_search(_spec(0.1, delta=2.0), 0.1, MetricsRecorder(), rng)
        with pytest.raises(ValueError):
            walk_search(_spec(1.5), 0.1, MetricsRecorder(), rng)
        with pytest.raises(ValueError):
            walk_search(_spec(0.1), 0.0, MetricsRecorder(), rng)

    def test_forced_false_negative(self, rng):
        faults = FaultInjector()
        faults.force_always("walk.false_negative")
        result = walk_search(_spec(1.0), 0.01, MetricsRecorder(), rng, faults=faults)
        assert not result.succeeded
