"""Tests for QuantumGeneralLE (Section 5.4) and the cluster machinery."""

import pytest

from repro.core.leader_election.clusters import ClusterState, log_star, maximal_matching
from repro.core.leader_election.general import quantum_general_le
from repro.network import graphs
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestLogStar:
    def test_small_values(self):
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_clamped_minimum(self):
        assert log_star(1) == 1


class TestClusterState:
    def test_initial_singletons(self):
        state = ClusterState(5)
        assert state.count == 5
        assert all(state.cluster_id(v) == v for v in range(5))

    def test_merge_absorbs_smaller(self):
        state = ClusterState(4)
        state.merge(0, 1, (0, 1))
        assert state.count == 3
        assert state.same_cluster(0, 1)

    def test_merge_keeps_tree_connected(self):
        state = ClusterState(6)
        state.merge(0, 1, (0, 1))
        state.merge(2, 3, (2, 3))
        cid = state.cluster_id(0)
        cid2 = state.cluster_id(2)
        merged = state.merge(cid, cid2, (1, 2))
        cluster = state.clusters[merged]
        assert cluster.size == 4
        assert cluster.height() >= 1  # connected tree, positive height

    def test_merge_validates_edge(self):
        state = ClusterState(4)
        with pytest.raises(ValueError):
            state.merge(0, 1, (2, 3))

    def test_merge_rejects_self(self):
        state = ClusterState(3)
        with pytest.raises(ValueError):
            state.merge(0, 0, (0, 1))

    def test_total_tree_edges(self):
        state = ClusterState(5)
        state.merge(0, 1, (0, 1))
        state.merge(2, 3, (2, 3))
        assert state.total_tree_edges() == 2


class TestMaximalMatching:
    def test_mutual_proposals_pair(self):
        proposals = {0: (1, (0, 1)), 1: (0, (1, 0))}
        pairs, attachments = maximal_matching(proposals)
        assert len(pairs) == 1
        assert not attachments

    def test_chain_proposals(self):
        proposals = {0: (1, (0, 1)), 1: (2, (1, 2)), 2: (1, (2, 1))}
        pairs, attachments = maximal_matching(proposals)
        matched = {c for a, b, _ in pairs for c in (a, b)}
        # every unmatched cluster attaches to a matched one
        for cid, target in attachments.items():
            assert cid not in matched
            assert target in matched

    def test_halving_guarantee(self):
        """Matching + attachment merges every cluster into a group of >= 2."""
        proposals = {i: ((i + 1) % 10, (i, (i + 1) % 10)) for i in range(10)}
        pairs, attachments = maximal_matching(proposals)
        group_count = len(pairs)  # attachments join existing groups
        assert len(pairs) * 2 + len(attachments) == 10
        assert group_count <= 5


class TestQuantumGeneralLE:
    def test_random_graph_explicit_success(self):
        for seed in range(10):
            rng = RandomSource(seed)
            topology = graphs.erdos_renyi(48, 0.15, rng.spawn())
            result = quantum_general_le(topology, rng.spawn())
            assert result.success
            assert result.explicit_success

    def test_path_graph(self):
        result = quantum_general_le(graphs.path(16), RandomSource(0))
        assert result.explicit_success

    def test_cycle_graph(self):
        result = quantum_general_le(graphs.cycle(20), RandomSource(1))
        assert result.explicit_success

    def test_torus(self):
        result = quantum_general_le(graphs.torus(5, 5), RandomSource(2))
        assert result.explicit_success

    def test_two_node_graph(self):
        result = quantum_general_le(graphs.path(2), RandomSource(3))
        assert result.explicit_success

    def test_phases_logarithmic(self):
        result = quantum_general_le(graphs.cycle(64), RandomSource(4))
        assert result.meta["phases"] <= 10  # ceil(log2 64) + slack

    def test_ledger_phases_present(self):
        result = quantum_general_le(graphs.torus(4, 4), RandomSource(5))
        labels = result.metrics.ledger.messages_by_label()
        assert "general-le.grover.checking" in labels
        assert "general-le.convergecast" in labels
        assert "general-le.matching" in labels
        assert "general-le.leader-broadcast" in labels

    def test_message_advantage_on_dense_graphs(self):
        """Õ(√(mn)) beats Θ(m) once degrees are large enough for the √deg
        saving to dominate the attempt constants (crossover ≈ deg 270 with
        α = 1/8)."""
        from repro.classical.leader_election.general_ghs import classical_le_general

        rng = RandomSource(6)
        topology = graphs.erdos_renyi(512, 0.9, rng.spawn())
        quantum = quantum_general_le(topology, rng.spawn(), alpha=1 / 8)
        classical = classical_le_general(topology, rng.spawn())
        assert quantum.success and classical.success
        per_phase_quantum = quantum.messages / quantum.meta["phases"]
        per_phase_classical = classical.messages / classical.meta["phases"]
        assert per_phase_quantum < per_phase_classical

    def test_fault_grover_failures_slow_but_survive(self):
        faults = FaultInjector()
        faults.force("grover.false_negative", times=50)
        result = quantum_general_le(
            graphs.cycle(12), RandomSource(7), faults=faults
        )
        # Some phases lose proposals, but the phase limit absorbs it.
        assert len(result.elected) <= 1
