"""Tests for QuantumAgreement (Algorithm 4)."""

import pytest

from repro.core.agreement.quantum_agreement import (
    default_epsilon,
    quantum_agreement,
)
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource, SharedCoin


def _inputs(n, ones):
    return [1] * ones + [0] * (n - ones)


class TestCorrectness:
    def test_valid_agreement_many_seeds(self):
        successes = 0
        for seed in range(25):
            rng = RandomSource(seed)
            result = quantum_agreement(_inputs(128, 40), rng)
            successes += result.success
        assert successes >= 24

    def test_all_ones_cannot_decide_zero(self):
        """Validity: unanimous input 1 must never yield decision 0."""
        for seed in range(20):
            result = quantum_agreement(_inputs(64, 64), RandomSource(seed))
            if result.decided_nodes:
                assert result.agreed_value == 1

    def test_all_zeros_cannot_decide_one(self):
        for seed in range(20):
            result = quantum_agreement(_inputs(64, 0), RandomSource(seed))
            if result.decided_nodes:
                assert result.agreed_value == 0

    def test_balanced_inputs_agree_on_something(self):
        result = quantum_agreement(_inputs(128, 64), RandomSource(5))
        assert result.success
        assert result.agreed_value in (0, 1)

    def test_decided_value_is_input_value(self):
        for seed in range(10):
            result = quantum_agreement(_inputs(96, 30), RandomSource(seed))
            if result.decided_nodes:
                assert result.agreed_value in set(result.inputs.values())

    def test_non_candidates_stay_undecided(self):
        result = quantum_agreement(_inputs(128, 50), RandomSource(1))
        undecided = [v for v, d in result.decisions.items() if d is None]
        assert len(undecided) >= 128 - result.meta["candidates"]


class TestSharedCoin:
    def test_explicit_coin_reproducibility(self):
        a = quantum_agreement(
            _inputs(64, 20), RandomSource(3), shared_coin=SharedCoin(RandomSource(9))
        )
        b = quantum_agreement(
            _inputs(64, 20), RandomSource(3), shared_coin=SharedCoin(RandomSource(9))
        )
        assert a.decisions == b.decisions
        assert a.messages == b.messages

    def test_coin_flips_bounded_by_iterations(self):
        coin = SharedCoin(RandomSource(0))
        result = quantum_agreement(_inputs(64, 20), RandomSource(4), shared_coin=coin)
        assert coin.flips == result.meta["iterations"]


class TestParameters:
    def test_default_epsilon_clamped(self):
        assert default_epsilon(10**6) == pytest.approx(1 / 20)
        assert 0 < default_epsilon(32) <= 1 / 20

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            quantum_agreement([0, 2], RandomSource(0))
        with pytest.raises(ValueError):
            quantum_agreement([1], RandomSource(0))

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            quantum_agreement(_inputs(32, 8), RandomSource(0), epsilon=0.3)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            quantum_agreement(_inputs(32, 8), RandomSource(0), gamma=0.5)

    def test_lean_alphas_for_benchmarks(self):
        result = quantum_agreement(
            _inputs(128, 40),
            RandomSource(6),
            estimation_alpha=0.05,
            detection_alpha=0.01,
        )
        assert result.meta["candidates"] >= 0  # runs to completion


class TestCostStructure:
    def test_ledger_phases(self):
        result = quantum_agreement(_inputs(128, 40), RandomSource(7))
        labels = result.metrics.ledger.messages_by_label()
        assert "agreement.counting.checking" in labels
        # inform/detect appear unless the first iteration decided everyone
        # without undecided candidates; inform always fires when deciding.
        assert "agreement.inform" in labels

    def test_estimation_cost_scales_inverse_epsilon(self):
        costs = {}
        for eps in (0.05, 0.025):
            result = quantum_agreement(
                _inputs(256, 100),
                RandomSource(8),
                epsilon=eps,
                estimation_alpha=0.1,
                detection_alpha=0.1,
            )
            labels = result.metrics.ledger.messages_by_label()
            costs[eps] = labels["agreement.counting.checking"] / result.meta[
                "candidates"
            ]
        assert costs[0.025] == pytest.approx(2 * costs[0.05], rel=0.15)


class TestFaultPaths:
    def test_zero_candidates_nobody_decides(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = quantum_agreement(_inputs(64, 20), RandomSource(0), faults=faults)
        assert not result.success
        assert result.decided_nodes == []

    def test_detection_false_negative_keeps_candidate_running(self):
        faults = FaultInjector()
        faults.force("agreement.detect.false_negative", times=3)
        result = quantum_agreement(_inputs(64, 20), RandomSource(1), faults=faults)
        # Protocol still terminates within the iteration budget.
        assert result.meta["iterations"] <= result.meta["iteration_budget"]
