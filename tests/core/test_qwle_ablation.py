"""Unit tests for the QWLE walk-ablation variant (Section 1.2 / E12)."""

import math

import pytest

from repro.core.leader_election.diameter2 import QWLEParameters, quantum_qwle
from repro.network import graphs
from repro.util.rng import RandomSource

LEAN = dict(alpha=1 / 8, inner_alpha=1 / 8, outer_iterations=40, activation=0.25)


class TestAblationParameters:
    def test_default_k_becomes_sqrt_n(self):
        params = QWLEParameters(ablate_walk=True).resolve(400)
        assert params.k == 20  # √400

    def test_walk_default_k_is_two_thirds(self):
        params = QWLEParameters(ablate_walk=False).resolve(1000)
        assert params.k == 100  # 1000^(2/3)

    def test_flag_survives_resolution(self):
        assert QWLEParameters(ablate_walk=True).resolve(64).ablate_walk
        assert not QWLEParameters().resolve(64).ablate_walk


class TestAblationBehaviour:
    def test_still_elects_unique_leader(self):
        successes = 0
        for seed in range(10):
            rng = RandomSource(seed)
            topology = graphs.diameter_two_gnp(48, rng.spawn())
            result = quantum_qwle(
                topology, rng.spawn(), QWLEParameters(ablate_walk=True, **LEAN)
            )
            successes += result.success
        assert successes >= 9

    def test_ablated_ledger_has_setup_not_update(self):
        rng = RandomSource(3)
        topology = graphs.diameter_two_gnp(48, rng.spawn())
        result = quantum_qwle(
            topology, rng.spawn(), QWLEParameters(ablate_walk=True, **LEAN)
        )
        labels = result.metrics.ledger.messages_by_label()
        if result.meta["walk_searches"] > 0:
            assert "qwle.walk.setup-ablated" in labels
            assert "qwle.walk.update" not in labels

    def test_walk_ledger_has_update_not_ablated(self):
        rng = RandomSource(4)
        topology = graphs.diameter_two_gnp(48, rng.spawn())
        result = quantum_qwle(topology, rng.spawn(), QWLEParameters(**LEAN))
        labels = result.metrics.ledger.messages_by_label()
        if result.meta["walk_searches"] > 0:
            assert "qwle.walk.update" in labels
            assert "qwle.walk.setup-ablated" not in labels

    def test_ablation_costs_more_on_dense_graphs(self):
        """At matching n, fresh-Setup amplification must outspend Updates
        (on average across seeds; both sides use their own optimal k)."""
        rng_top = RandomSource(77)
        topology = graphs.erdos_renyi(512, 0.5, rng_top)
        walk_total, ablated_total = 0, 0
        for seed in range(3):
            walk_total += quantum_qwle(
                topology, RandomSource(seed), QWLEParameters(**LEAN)
            ).messages
            ablated_total += quantum_qwle(
                topology,
                RandomSource(seed),
                QWLEParameters(ablate_walk=True, **LEAN),
            ).messages
        assert ablated_total > walk_total


class TestAblationArithmetic:
    def test_amortized_setup_cost_formula(self):
        """calls·k/t2 with ceil: charging t1·t2 update calls must total
        ≈ t1 fresh Setups."""
        k, t2, t1 = 30, 6, 4
        calls = t1 * t2
        assert math.ceil(calls * k / t2) == t1 * k
