"""Edge-case tests for quantum counting."""

import pytest

from repro.core.counting import approx_count, quantum_count
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource


def _oracle(n, marked_count):
    return SetOracle(
        domain=range(n),
        marked=set(range(marked_count)),
        charge_checking=uniform_charge(2, 2, "edge.checking"),
    )


class TestCountingEdgeCases:
    def test_empty_domain_count_zero(self):
        """t = 0: the eigenphase is exactly 0, every estimate is 0."""
        for seed in range(10):
            result = approx_count(
                _oracle(50, 0), 0.1, 0.1, MetricsRecorder(), RandomSource(seed)
            )
            assert result.estimate == pytest.approx(0.0)

    def test_full_domain_estimates_near_n(self):
        """t = N (above N/2): the doubled-domain trick must still deliver
        estimates within c·N."""
        n = 64
        errors = [
            abs(
                approx_count(
                    _oracle(n, n), 0.1, 0.1, MetricsRecorder(), RandomSource(s)
                ).estimate
                - n
            )
            for s in range(20)
        ]
        assert sorted(errors)[10] < 0.1 * n  # median within budget

    def test_single_marked_element(self):
        n = 256
        errors = [
            abs(
                approx_count(
                    _oracle(n, 1), 0.05, 0.1, MetricsRecorder(), RandomSource(s)
                ).estimate
                - 1
            )
            for s in range(20)
        ]
        assert sorted(errors)[10] < 0.05 * n

    def test_tiny_domain(self):
        result = quantum_count(_oracle(2, 1), 8, MetricsRecorder(), RandomSource(0))
        assert 0.0 <= result.estimate <= 2.0

    def test_accuracy_one_is_trivially_satisfied(self):
        result = approx_count(
            _oracle(10, 4), 1.0, 0.1, MetricsRecorder(), RandomSource(1)
        )
        assert abs(result.estimate - 4) < 10  # error < c·N = N

    def test_runs_always_odd(self):
        """Median boosting keeps the run count odd for a unique median."""
        for alpha in (0.4, 0.1, 0.01, 1e-4):
            result = approx_count(
                _oracle(20, 5), 0.2, alpha, MetricsRecorder(), RandomSource(2)
            )
            assert result.runs % 2 == 1
