"""Tests for QuantumRWLE (Algorithm 2) on graphs with mixing time τ."""

import pytest

from repro.core.leader_election.mixing import default_k_mixing, quantum_rwle
from repro.network import graphs
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestCorrectness:
    def test_hypercube_many_seeds(self):
        successes = 0
        for seed in range(25):
            rng = RandomSource(seed)
            result = quantum_rwle(graphs.hypercube(6), rng, tau=15)
            successes += result.success
        assert successes >= 23

    def test_expander_leader_is_top_candidate(self):
        rng = RandomSource(11)
        topology = graphs.random_regular(96, 6, rng.spawn())
        result = quantum_rwle(topology, rng.spawn(), tau=25)
        assert result.success
        assert result.leader == result.meta["highest_ranked"]

    def test_tau_estimated_when_omitted(self):
        rng = RandomSource(0)
        result = quantum_rwle(graphs.complete(32), rng)
        assert result.meta["tau"] >= 1
        assert result.success or len(result.elected) != 1

    def test_works_on_slow_mixing_graph(self):
        """Barbell: correctness holds, τ is just large."""
        rng = RandomSource(21)
        result = quantum_rwle(graphs.barbell(12), rng, tau=120)
        assert len(result.elected) == 1


class TestParameters:
    def test_default_k_formula(self):
        assert default_k_mixing(1000, 8) == pytest.approx(
            round(8 ** (2 / 3) * 10), abs=1
        )

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            quantum_rwle(graphs.cycle(8), RandomSource(0), tau=0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            quantum_rwle(graphs.cycle(8), RandomSource(0), tau=4, k=0)


class TestCostAccounting:
    def test_referee_walk_messages(self):
        rng = RandomSource(5)
        result = quantum_rwle(graphs.hypercube(5), rng, tau=10, k=3)
        labels = result.metrics.ledger.messages_by_label()
        expected = result.meta["candidates"] * 3 * 10
        assert labels["quantum-rwle.referee-walks"] == expected

    def test_checking_cost_grows_quadratically_with_tau(self):
        """The τ → τ² blow-up: per-candidate quantum-phase cost at τ vs 4τ
        grows ≈ 16× (up to CONGEST word-packing granularity)."""
        costs = {}
        for tau in (16, 64):
            rng = RandomSource(9)
            result = quantum_rwle(graphs.hypercube(6), rng, tau=tau, k=4, alpha=0.1)
            grover = result.metrics.ledger.messages_by_label()[
                "quantum-rwle.grover.checking"
            ]
            costs[tau] = grover / result.meta["candidates"]
        ratio = costs[64] / costs[16]
        assert 10 < ratio < 22  # ideal 16, quantized by word packing

    def test_rounds_deterministic(self):
        rounds = set()
        for seed in range(4):
            result = quantum_rwle(
                graphs.hypercube(5), RandomSource(seed), tau=8, k=4
            )
            rounds.add(result.rounds)
        assert len(rounds) == 1


class TestFaultPaths:
    def test_zero_candidates(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = quantum_rwle(
            graphs.hypercube(4), RandomSource(0), tau=6, faults=faults
        )
        assert result.elected == []

    def test_grover_false_negatives_inflate_leaders(self):
        faults = FaultInjector()
        faults.force_always("grover.false_negative")
        result = quantum_rwle(
            graphs.hypercube(5), RandomSource(1), tau=8, faults=faults
        )
        assert len(result.elected) == result.meta["candidates"]
