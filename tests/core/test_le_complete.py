"""Tests for QuantumLE (Algorithm 1) on complete networks."""

import math

import pytest

from repro.core.leader_election.complete import (
    default_k_complete,
    quantum_le_complete,
    theoretical_message_bound,
)
from repro.network.node import Status
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


class TestCorrectness:
    def test_unique_leader_many_seeds(self):
        successes = sum(
            quantum_le_complete(128, RandomSource(seed)).success
            for seed in range(40)
        )
        assert successes >= 39  # failure probability ≤ 1/n per run

    def test_leader_is_highest_ranked_candidate(self):
        result = quantum_le_complete(256, RandomSource(7))
        assert result.success
        assert result.leader == result.meta["highest_ranked"]

    def test_all_nodes_reach_terminal_status(self):
        result = quantum_le_complete(64, RandomSource(1))
        assert all(
            s in (Status.ELECTED, Status.NON_ELECTED)
            for s in result.statuses.values()
        )
        assert len(result.statuses) == 64

    def test_small_network(self):
        result = quantum_le_complete(4, RandomSource(3))
        assert len(result.elected) <= 1

    def test_relaxed_alpha_still_mostly_correct(self):
        """Constant α weakens the per-candidate union bound (the theorem
        needs α = 1/n²); a clear majority of runs still succeed."""
        successes = sum(
            quantum_le_complete(128, RandomSource(seed), alpha=1 / 8).success
            for seed in range(40)
        )
        assert successes >= 24


class TestParameters:
    def test_default_k_is_cube_root(self):
        assert default_k_complete(1000) == 10
        assert default_k_complete(2) == 1

    def test_custom_k_changes_tradeoff(self):
        small_k = quantum_le_complete(512, RandomSource(0), k=2)
        large_k = quantum_le_complete(512, RandomSource(0), k=64)
        # Fewer referees → more Grover iterations → more rounds.
        assert small_k.rounds > large_k.rounds

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            quantum_le_complete(16, RandomSource(0), k=0)
        with pytest.raises(ValueError):
            quantum_le_complete(16, RandomSource(0), k=16)

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            quantum_le_complete(1, RandomSource(0))

    def test_theoretical_bound_helper(self):
        assert theoretical_message_bound(1000) == pytest.approx(
            10 + math.sqrt(100), rel=0.01
        )


class TestCostAccounting:
    def test_ledger_has_expected_phases(self):
        result = quantum_le_complete(128, RandomSource(2))
        prefixes = result.metrics.ledger.messages_by_prefix()
        assert "quantum-le" in prefixes
        labels = result.metrics.ledger.messages_by_label()
        assert "quantum-le.referees" in labels
        assert "quantum-le.grover.checking" in labels

    def test_referee_messages_equal_candidates_times_k(self):
        result = quantum_le_complete(256, RandomSource(4), k=5)
        labels = result.metrics.ledger.messages_by_label()
        assert labels["quantum-le.referees"] == result.meta["candidates"] * 5

    def test_per_candidate_grover_cost_scales_with_sqrt_n_over_k(self):
        """Expected messages/candidate ∝ √(n/k): a 16× growth in n at fixed k
        should quadruple the per-candidate Grover cost (averaged over
        seeds — early stopping randomizes individual runs)."""
        runs = {}
        for n in (256, 4096):
            totals = []
            for seed in range(12):
                result = quantum_le_complete(n, RandomSource(seed), k=4, alpha=0.1)
                grover = result.metrics.ledger.messages_by_label()[
                    "quantum-le.grover.checking"
                ]
                totals.append(grover / result.meta["candidates"])
            runs[n] = sum(totals) / len(totals)
        assert runs[4096] / runs[256] == pytest.approx(4.0, rel=0.4)

    def test_rounds_deterministic_for_fixed_parameters(self):
        rounds = {
            quantum_le_complete(128, RandomSource(seed)).rounds
            for seed in range(5)
        }
        assert len(rounds) == 1  # Definition 4.1: synchronized schedule


class TestFaultPaths:
    def test_zero_candidates_elects_nobody(self):
        faults = FaultInjector()
        faults.force("candidates.force_empty")
        result = quantum_le_complete(64, RandomSource(0), faults=faults)
        assert not result.success
        assert result.elected == []
        assert result.meta["candidates"] == 0

    def test_rank_tie_can_produce_two_leaders(self):
        faults = FaultInjector()
        faults.force("candidates.force_tie")
        # With the two top candidates tied, neither sees a strictly higher
        # rank, so both become leaders: the Fact C.2 failure mode.
        result = quantum_le_complete(64, RandomSource(5), faults=faults)
        assert len(result.elected) == 2
        assert not result.success

    def test_grover_false_negative_creates_extra_leader(self):
        faults = FaultInjector()
        faults.force_always("grover.false_negative")
        result = quantum_le_complete(64, RandomSource(6), faults=faults)
        # Every candidate fails to find a higher rank → all become leaders.
        assert len(result.elected) == result.meta["candidates"]
