"""Tests for distributed quantum counting (Theorem 4.2 / Corollary 4.3)."""

import math

import pytest

from repro.core.counting import approx_count, quantum_count, runs_for_confidence
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.quantum.phase_estimation import counting_error_bound
from repro.util.rng import RandomSource


def _oracle(domain_size: int, marked_count: int, messages=2, rounds=2):
    return SetOracle(
        domain=list(range(domain_size)),
        marked=set(range(marked_count)),
        charge_checking=uniform_charge(messages, rounds, "count.checking"),
    )


@pytest.fixture
def rng():
    return RandomSource(13)


class TestQuantumCount:
    def test_message_cost_is_two_p_times_mc(self, rng):
        metrics = MetricsRecorder()
        result = quantum_count(_oracle(50, 10), steps=32, metrics=metrics, rng=rng)
        assert result.checking_calls == 64
        assert metrics.messages == 128

    def test_estimate_within_theorem_bound_mostly(self):
        t, N, P = 20, 128, 64
        bound = counting_error_bound(t, N, P)
        hits = 0
        trials = 300
        for seed in range(trials):
            result = quantum_count(
                _oracle(N, t), P, MetricsRecorder(), RandomSource(seed)
            )
            hits += abs(result.estimate - t) < bound
        assert hits / trials > 0.75  # ≥ 8/π² ≈ 0.81 theoretically

    def test_zero_count_estimates_zero(self, rng):
        result = quantum_count(_oracle(64, 0), 16, MetricsRecorder(), rng)
        assert result.estimate == pytest.approx(0.0)

    def test_rejects_bad_steps(self, rng):
        with pytest.raises(ValueError):
            quantum_count(_oracle(4, 1), 0, MetricsRecorder(), rng)


class TestApproxCount:
    def test_estimate_within_c_times_domain(self):
        """Corollary 4.3's |t − t̃| < c·|X| with probability ≥ 1 − α."""
        failures = 0
        trials = 60
        accuracy = 0.1
        for seed in range(trials):
            oracle = _oracle(200, 60)
            result = approx_count(
                oracle, accuracy, 0.05, MetricsRecorder(), RandomSource(seed)
            )
            failures += abs(result.estimate - 60) >= accuracy * 200
        assert failures / trials <= 0.05 + 0.05

    def test_message_cost_scales_inverse_accuracy(self, rng):
        costs = {}
        for accuracy in (0.2, 0.1, 0.05):
            metrics = MetricsRecorder()
            approx_count(_oracle(100, 30), accuracy, 0.2, metrics, rng)
            costs[accuracy] = metrics.messages
        assert costs[0.1] == pytest.approx(2 * costs[0.2], rel=0.15)
        assert costs[0.05] == pytest.approx(4 * costs[0.2], rel=0.15)

    def test_handles_counts_above_half_domain(self):
        """The doubled-domain trick lifts the t ≤ |X|/2 hypothesis."""
        errors = []
        for seed in range(30):
            oracle = _oracle(100, 90)
            result = approx_count(
                oracle, 0.1, 0.1, MetricsRecorder(), RandomSource(seed)
            )
            errors.append(abs(result.estimate - 90))
        assert sorted(errors)[len(errors) // 2] < 0.1 * 100  # median within c·N

    def test_median_boosting_run_count(self):
        assert runs_for_confidence(0.5) < runs_for_confidence(1e-6)
        # Exact binomial tail: the returned (odd) r must satisfy the bound.
        alpha = 1e-4
        runs = runs_for_confidence(alpha)
        assert runs % 2 == 1
        miss = 1 - 8 / math.pi**2
        tail = sum(
            math.comb(runs, j) * miss**j * (1 - miss) ** (runs - j)
            for j in range((runs + 1) // 2, runs + 1)
        )
        assert tail <= alpha
        # And r − 2 must not (minimality).
        if runs > 1:
            smaller = runs - 2
            tail_smaller = sum(
                math.comb(smaller, j) * miss**j * (1 - miss) ** (smaller - j)
                for j in range((smaller + 1) // 2, smaller + 1)
            )
            assert tail_smaller > alpha

    def test_rejects_bad_accuracy(self, rng):
        with pytest.raises(ValueError):
            approx_count(_oracle(4, 1), 0.0, 0.1, MetricsRecorder(), rng)

    def test_quantum_vs_classical_scaling_advantage(self, rng):
        """O(1/c) quantum messages vs the classical Θ(1/c²) sampling bound.

        The quadratic separation dominates the schedule constants once the
        accuracy is demanding enough (here c = 5·10⁻⁴; the crossover with our
        constants sits near c ≈ 10⁻³).
        """
        accuracy = 5e-4
        metrics = MetricsRecorder()
        approx_count(_oracle(500, 100), accuracy, 0.2, metrics, rng)
        quantum_cost = metrics.messages
        classical_cost = 2 * math.ceil(
            math.log(2 / 0.2) / (2 * accuracy**2)
        )  # Hoeffding samples × 2 messages
        assert quantum_cost < classical_cost
