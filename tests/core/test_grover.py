"""Tests for the distributed Grover search (Theorem 4.1)."""

import pytest

from repro.core.grover import distributed_grover_search
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource


def _oracle(domain_size: int, marked: set, messages=2, rounds=2):
    return SetOracle(
        domain=list(range(domain_size)),
        marked=marked,
        charge_checking=uniform_charge(messages, rounds, "grover.checking"),
    )


@pytest.fixture
def rng():
    return RandomSource(77)


class TestCorrectness:
    def test_finds_marked_element_under_promise(self, rng):
        oracle = _oracle(64, {5, 17})
        metrics = MetricsRecorder()
        result = distributed_grover_search(
            oracle, epsilon=2 / 64, alpha=0.01, metrics=metrics, rng=rng
        )
        assert result.succeeded
        assert result.found in {5, 17}

    def test_no_marked_elements_returns_none(self, rng):
        oracle = _oracle(32, set())
        metrics = MetricsRecorder()
        result = distributed_grover_search(
            oracle, epsilon=1 / 32, alpha=0.01, metrics=metrics, rng=rng
        )
        assert not result.succeeded
        assert result.found is None

    def test_never_false_positive_over_many_seeds(self):
        """ε_f = 0 must always yield 'none found' — verification guarantees it."""
        for seed in range(50):
            oracle = _oracle(16, set())
            result = distributed_grover_search(
                oracle, 1 / 16, 0.25, MetricsRecorder(), RandomSource(seed)
            )
            assert result.found is None

    def test_success_rate_meets_alpha_under_promise(self):
        alpha = 0.05
        failures = 0
        trials = 200
        for seed in range(trials):
            oracle = _oracle(100, {3})
            result = distributed_grover_search(
                oracle, 1 / 100, alpha, MetricsRecorder(), RandomSource(seed)
            )
            failures += not result.succeeded
        assert failures / trials <= alpha + 0.03

    def test_works_when_marked_fraction_exceeds_promise(self, rng):
        """ε_f ≫ ε still succeeds (BBHT handles unknown ε_f)."""
        oracle = _oracle(40, set(range(20)))
        result = distributed_grover_search(
            oracle, 1 / 40, 0.01, MetricsRecorder(), rng
        )
        assert result.succeeded


class TestCostAccounting:
    def test_schedule_bounds_and_round_determinism(self, rng):
        """Rounds follow the full synchronized schedule; messages stay within
        the Theorem 4.1 envelope (attained only without early stopping)."""
        oracle = _oracle(64, {1})
        metrics = MetricsRecorder()
        epsilon, alpha = 1 / 64, 0.01
        result = distributed_grover_search(oracle, epsilon, alpha, metrics, rng)
        cap = worst_case_iterations(epsilon)
        attempts = attempts_for_confidence(alpha)
        schedule_calls = attempts * (2 * cap + 1)
        assert result.checking_calls <= schedule_calls
        assert metrics.messages <= 2 * schedule_calls
        assert metrics.rounds == 2 * schedule_calls  # idle rounds still elapse

    def test_cost_scales_like_inverse_sqrt_epsilon(self):
        """Expected messages ∝ 1/√ε (measured on the never-success path,
        where every attempt is initiated)."""
        def average_cost(eps):
            total = 0
            for seed in range(30):
                metrics = MetricsRecorder()
                distributed_grover_search(
                    _oracle(16, set()), eps, 0.1, metrics, RandomSource(seed)
                )
                total += metrics.messages
            return total / 30

        low = average_cost(1 / 16)
        high = average_cost(1 / 256)
        assert high == pytest.approx(4 * low, rel=0.35)

    def test_rounds_deterministic_given_parameters(self):
        """Definition 4.1: the synchronized round count never varies."""
        rounds = set()
        for seed in range(10):
            metrics = MetricsRecorder()
            distributed_grover_search(
                _oracle(32, {1, 2}), 1 / 32, 0.05, metrics, RandomSource(seed)
            )
            rounds.add(metrics.rounds)
        assert len(rounds) == 1

    def test_early_stop_saves_messages(self):
        """A search over a fully marked domain stops after one attempt; the
        empty domain runs the whole schedule."""
        quick = MetricsRecorder()
        distributed_grover_search(
            _oracle(16, set(range(16))), 0.5, 0.01, quick, RandomSource(0)
        )
        full = MetricsRecorder()
        distributed_grover_search(
            _oracle(16, set()), 0.5, 0.01, full, RandomSource(0)
        )
        assert quick.messages < full.messages
        assert quick.rounds == full.rounds

    def test_checking_cost_multiplier(self):
        """Doubling M_C doubles the message bill (same seed, same draws)."""
        m1 = MetricsRecorder()
        distributed_grover_search(
            _oracle(32, {1}, messages=2), 1 / 32, 0.1, m1, RandomSource(0)
        )
        m2 = MetricsRecorder()
        distributed_grover_search(
            _oracle(32, {1}, messages=4), 1 / 32, 0.1, m2, RandomSource(0)
        )
        assert m2.messages == 2 * m1.messages


class TestValidationAndFaults:
    def test_rejects_bad_epsilon(self, rng):
        with pytest.raises(ValueError):
            distributed_grover_search(
                _oracle(4, set()), 0.0, 0.1, MetricsRecorder(), rng
            )

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ValueError):
            distributed_grover_search(
                _oracle(4, set()), 0.5, 1.0, MetricsRecorder(), rng
            )

    def test_forced_false_negative(self, rng):
        faults = FaultInjector()
        faults.force_always("grover.false_negative")
        oracle = _oracle(8, {0, 1, 2, 3, 4, 5, 6, 7})  # everything marked
        result = distributed_grover_search(
            oracle, 0.5, 0.01, MetricsRecorder(), rng, faults=faults
        )
        assert not result.succeeded

    def test_fault_consumed_then_recovers(self, rng):
        faults = FaultInjector()
        faults.force("grover.false_negative", times=1)
        oracle = _oracle(8, set(range(8)))
        result = distributed_grover_search(
            oracle, 0.5, 0.01, MetricsRecorder(), rng, faults=faults
        )
        assert result.succeeded  # later attempts land
