"""Tests for the explicit-election upgrade."""

import pytest

from repro.core.leader_election.explicit import make_explicit
from repro.core.results import LeaderElectionResult
from repro.network import graphs
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.util.rng import RandomSource


def _implicit_result(n, leader):
    statuses = {
        v: Status.ELECTED if v == leader else Status.NON_ELECTED for v in range(n)
    }
    return LeaderElectionResult(n=n, statuses=statuses, metrics=MetricsRecorder())


class TestMakeExplicit:
    def test_complete_graph_announcement(self):
        result = make_explicit(_implicit_result(16, 3))
        assert result.explicit_success
        assert result.known_leader == {v: 3 for v in range(16)}
        assert result.messages == 15
        assert result.rounds == 1

    def test_sparse_topology_uses_bfs_tree(self):
        topology = graphs.path(8)
        result = make_explicit(_implicit_result(8, 0), topology)
        assert result.explicit_success
        assert result.messages == 7
        assert result.rounds == 7  # path eccentricity from node 0

    def test_failed_election_left_untouched(self):
        statuses = {v: Status.NON_ELECTED for v in range(4)}
        result = LeaderElectionResult(4, statuses, MetricsRecorder())
        make_explicit(result)
        assert result.known_leader is None
        assert result.messages == 0

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_explicit(_implicit_result(8, 0), graphs.cycle(6))

    def test_end_to_end_with_quantum_le(self):
        from repro import quantum_le_complete

        implicit = quantum_le_complete(128, RandomSource(5))
        assert implicit.success
        before = implicit.messages
        explicit = make_explicit(implicit)
        assert explicit.explicit_success
        assert explicit.messages == before + 127

    def test_announcement_cost_dominates_sublinear_election(self):
        """Footnote 1: explicitness forces Ω(n), swamping the Õ(n^{1/3})
        election itself at large n — measured directly."""
        from repro import quantum_le_complete

        n = 32768
        implicit = quantum_le_complete(n, RandomSource(6))
        election_cost = implicit.messages
        explicit = make_explicit(implicit)
        announcement = explicit.metrics.ledger.messages_by_label()[
            "explicit.announce"
        ]
        assert announcement == n - 1
        assert announcement > election_cost  # Ω(n) dwarfs Õ(n^{1/3}·polylog)
