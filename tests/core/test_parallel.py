"""Tests for parallel stage accounting."""

from repro.core.parallel import run_in_parallel
from repro.network.metrics import MetricsRecorder


class TestRunInParallel:
    def test_messages_sum_rounds_max(self):
        metrics = MetricsRecorder()

        def task_a(scratch):
            scratch.charge("a", messages=5, rounds=3)
            return "a"

        def task_b(scratch):
            scratch.charge("b", messages=7, rounds=10)
            return "b"

        results = run_in_parallel(metrics, "stage", [task_a, task_b])
        assert results == ["a", "b"]
        assert metrics.messages == 12
        assert metrics.rounds == 10  # max, not sum

    def test_labels_preserved(self):
        metrics = MetricsRecorder()
        run_in_parallel(
            metrics,
            "stage",
            [lambda s: s.charge("x.inner", messages=2, rounds=1)],
        )
        assert metrics.ledger.messages_by_label()["x.inner"] == 2

    def test_empty_task_list(self):
        metrics = MetricsRecorder()
        assert run_in_parallel(metrics, "stage", []) == []
        assert metrics.rounds == 0

    def test_zero_round_tasks_add_no_rounds(self):
        metrics = MetricsRecorder()
        run_in_parallel(
            metrics, "stage", [lambda s: s.charge_messages("m", 1)]
        )
        assert metrics.rounds == 0
        assert metrics.messages == 1
