"""Tests for repro.core.procedures."""

import pytest

from repro.core.procedures import CountOracle, SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource


@pytest.fixture
def rng():
    return RandomSource(8)


class TestUniformCharge:
    def test_charges_per_call(self):
        metrics = MetricsRecorder()
        charge = uniform_charge(2, 3, "test.checking")
        charge(metrics, 5)
        assert metrics.messages == 10
        assert metrics.rounds == 15
        assert metrics.ledger.messages_by_label() == {"test.checking": 10}

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            uniform_charge(-1, 0, "bad")


class TestSetOracle:
    def _oracle(self):
        return SetOracle(
            domain=list(range(10)),
            marked={2, 5, 7},
            charge_checking=uniform_charge(2, 2, "oracle"),
        )

    def test_counts(self):
        oracle = self._oracle()
        assert oracle.domain_size == 10
        assert oracle.marked_count() == 3
        assert oracle.marked_fraction() == pytest.approx(0.3)

    def test_evaluate_consistent_with_marked(self):
        oracle = self._oracle()
        for x in range(10):
            assert oracle.evaluate(x) == (x in {2, 5, 7})

    def test_sample_marked_in_marked_set(self, rng):
        oracle = self._oracle()
        assert all(oracle.sample_marked(rng) in {2, 5, 7} for _ in range(30))

    def test_sample_unmarked_outside_marked_set(self, rng):
        oracle = self._oracle()
        assert all(
            oracle.sample_unmarked(rng) not in {2, 5, 7} for _ in range(30)
        )

    def test_empty_marked_set_raises_on_sample(self, rng):
        oracle = SetOracle(range(5), set(), uniform_charge(1, 1, "o"))
        with pytest.raises(ValueError):
            oracle.sample_marked(rng)

    def test_all_marked_raises_on_unmarked_sample(self, rng):
        oracle = SetOracle(range(3), {0, 1, 2}, uniform_charge(1, 1, "o"))
        with pytest.raises(ValueError):
            oracle.sample_unmarked(rng)

    def test_rejects_stray_marked_elements(self):
        with pytest.raises(ValueError):
            SetOracle(range(3), {5}, uniform_charge(1, 1, "o"))

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            SetOracle([], set(), uniform_charge(1, 1, "o"))


class TestCountOracle:
    def test_implicit_domain(self, rng):
        oracle = CountOracle(
            domain_size=10**9,
            marked=10**6,
            charge_checking=uniform_charge(2, 2, "big"),
            sample_marked_fn=lambda r: "witness",
        )
        assert oracle.marked_fraction() == pytest.approx(1e-3)
        assert oracle.sample_marked(rng) == "witness"

    def test_zero_marked_sampling_raises(self, rng):
        oracle = CountOracle(5, 0, uniform_charge(1, 1, "o"), lambda r: 1)
        with pytest.raises(ValueError):
            oracle.sample_marked(rng)

    def test_evaluate_optional(self, rng):
        oracle = CountOracle(5, 1, uniform_charge(1, 1, "o"), lambda r: 0)
        with pytest.raises(NotImplementedError):
            oracle.evaluate(0)

    def test_evaluate_when_provided(self):
        oracle = CountOracle(
            5, 2, uniform_charge(1, 1, "o"), lambda r: 0,
            evaluate_fn=lambda x: x < 2,
        )
        assert oracle.evaluate(1) and not oracle.evaluate(3)

    def test_rejects_inconsistent_marked_count(self):
        with pytest.raises(ValueError):
            CountOracle(5, 6, uniform_charge(1, 1, "o"), lambda r: 0)
