"""Shared fixtures: telemetry tests run with fully isolated telemetry state.

``set_trace_path``/``set_profiling`` (and the CLI flags built on them)
export ``REPRO_TRACE``/``REPRO_PROFILE`` process-wide so that fork-based
workers inherit them; each test here starts from a clean slate and
scrubs whatever it exported on the way out.
"""

from __future__ import annotations

import os

import pytest

from repro.telemetry import reset_metrics, reset_telemetry


@pytest.fixture(autouse=True)
def _isolated_telemetry(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "default-cache"))
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    reset_telemetry()
    reset_metrics()
    yield
    # CLI handlers export telemetry env process-wide; scrub by hand so a
    # leak never crosses test boundaries (monkeypatch would faithfully
    # restore a pre-existing leak).
    os.environ.pop("REPRO_TRACE", None)
    os.environ.pop("REPRO_PROFILE", None)
    reset_telemetry()
    reset_metrics()
