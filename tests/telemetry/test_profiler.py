"""PhaseProfiler: accumulation, delta/merge plumbing, report rendering."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    PhaseProfiler,
    current_profiler,
    format_profile,
    set_profiling,
)


class TestAccumulation:
    def test_add_accumulates_seconds_and_hits(self):
        prof = PhaseProfiler()
        prof.add("engine.step", 0.5)
        prof.add("engine.step", 0.25, hits=3)
        assert prof.snapshot() == {
            "engine.step": {"seconds": 0.75, "hits": 4}
        }

    def test_timer_charges_wall_time(self):
        prof = PhaseProfiler()
        with prof.timer("phase"):
            pass
        state = prof.snapshot()["phase"]
        assert state["hits"] == 1
        assert state["seconds"] >= 0.0

    def test_delta_reports_only_moved_phases(self):
        prof = PhaseProfiler()
        prof.add("a", 1.0)
        before = prof.snapshot()
        prof.add("b", 0.5)
        assert prof.delta(before) == {"b": {"seconds": 0.5, "hits": 1}}

    def test_merge_folds_worker_deltas(self):
        parent = PhaseProfiler()
        parent.add("engine.step", 1.0)
        parent.merge({"engine.step": {"seconds": 0.5, "hits": 2}})
        assert parent.snapshot()["engine.step"] == {
            "seconds": 1.5,
            "hits": 3,
        }

    def test_reset(self):
        prof = PhaseProfiler()
        prof.add("a", 1.0)
        prof.reset()
        assert prof.snapshot() == {}


class TestContext:
    def test_off_by_default(self):
        assert current_profiler() is None

    def test_set_profiling_toggles(self):
        set_profiling(True)
        prof = current_profiler()
        assert prof is not None
        assert current_profiler() is prof  # stable while enabled
        set_profiling(False)
        assert current_profiler() is None


class TestFormat:
    def test_empty_profile(self):
        assert format_profile({}) == "(no phases recorded)"

    def test_sorted_by_seconds_with_shares(self):
        text = format_profile(
            {
                "engine.step": {"seconds": 1.0, "hits": 10},
                "engine.gather": {"seconds": 3.0, "hits": 10},
            }
        )
        lines = text.splitlines()
        assert lines[0].split() == ["phase", "seconds", "share", "hits"]
        assert lines[1].startswith("engine.gather")
        assert "75.0%" in lines[1]
        assert "25.0%" in lines[2]
