"""Fault-accounting reconciliation: trace counters ≡ adversary ledger.

Three independently derived accounting sources describe every faulty
run — the engine's per-round telemetry counters, the armed adversary's
ledger (``fault_stats``), and the undelivered-message classification.
The engine cross-checks them after every adversarial run
(``reconcile_accounting``); these tests additionally prove the *trace*
stream sums to the same ledger on real engine-driven protocols, and
that a tampered counter is caught loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import AdversarySpec
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.runtime import get_scenario
from repro.telemetry import reset_telemetry
from repro.util.rng import RandomSource

#: Engine-driven catalogue scenarios covering the loss classes and all
#: three dispatch paths (lcr is batch-capable, hs is scalar).
SCENARIOS = [
    ("ring-le-lossy/lcr", 16, 5),
    ("ring-le-crash/hs", 16, 5),
    ("complete-le-lossy/classical", 24, 7),
    ("wheel-le-adaptive/classical", 24, 3),
]


def _traced_trial(tmp_path, monkeypatch, name, n, seed):
    trace = tmp_path / "trial.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(trace))
    reset_telemetry()
    outcome = get_scenario(name).run_trial(n, RandomSource(seed))
    reset_telemetry()  # flush/close the descriptor
    records = [
        json.loads(line) for line in trace.read_text().splitlines() if line
    ]
    return outcome, records


class TestTraceMatchesLedger:
    @pytest.mark.parametrize("name,n,seed", SCENARIOS)
    def test_round_events_sum_to_fault_stats(
        self, tmp_path, monkeypatch, name, n, seed
    ):
        outcome, records = _traced_trial(tmp_path, monkeypatch, name, n, seed)
        rounds = [r for r in records if r["event"] == "round"]
        assert rounds, "engine emitted no round events"
        for cls in ("dropped", "delayed", "duplicated"):
            assert sum(r[cls] for r in rounds) == outcome.extra[
                f"fault_messages_{cls}"
            ], f"{name}: trace {cls} sum diverges from the adversary ledger"

    @pytest.mark.parametrize("name,n,seed", SCENARIOS)
    def test_crash_events_match_ledger(
        self, tmp_path, monkeypatch, name, n, seed
    ):
        outcome, records = _traced_trial(tmp_path, monkeypatch, name, n, seed)
        crashes = [r for r in records if r["event"] == "crash"]
        assert len(crashes) == outcome.extra["fault_nodes_crashed"]

    @pytest.mark.parametrize("name,n,seed", SCENARIOS)
    def test_engine_end_matches_undelivered_detail(
        self, tmp_path, monkeypatch, name, n, seed
    ):
        outcome, records = _traced_trial(tmp_path, monkeypatch, name, n, seed)
        (end,) = [r for r in records if r["event"] == "engine_end"]
        assert end["dropped_adversary"] == outcome.extra[
            "undelivered_dropped_adversary"
        ]
        assert end["dropped_protocol"] == outcome.extra[
            "undelivered_dropped_protocol"
        ]
        assert end["in_flight"] == outcome.extra["undelivered_in_flight"]


class _Chatter(Node):
    """Floods every port for a few rounds — plenty of faultable traffic."""

    def step(self, round_index, inbox):
        if round_index >= 4:
            self.halt()
            return []
        return [
            (port, Message("m", payload=round_index))
            for port in range(self.degree)
        ]


def _run_engine(backend="fast", spec_text="drop=0.2,seed=9"):
    topology = graphs.cycle(8)
    rng = RandomSource(3)
    spec = AdversarySpec.parse(spec_text)
    armed = spec.arm(spec.derive_rng(rng), topology.n)
    nodes = [
        _Chatter(v, topology.degree(v), rng.spawn()) for v in range(topology.n)
    ]
    engine = SynchronousEngine(
        topology, nodes, MetricsRecorder(), backend=backend, adversary=armed
    )
    engine.run(max_rounds=10)
    return engine


class TestReconcileAccounting:
    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_clean_run_reconciles(self, backend):
        engine = _run_engine(backend=backend)
        agreed = engine.reconcile_accounting()
        assert agreed["messages_dropped"] == engine.adversary.messages_dropped
        assert agreed["messages_dropped"] > 0  # the check has teeth

    def test_tampered_counter_is_caught(self):
        engine = _run_engine()
        engine._adv_dropped += 1
        with pytest.raises(RuntimeError, match="fault accounting drift"):
            engine.reconcile_accounting()

    def test_tampered_crash_ledger_is_caught(self):
        engine = _run_engine(spec_text="crash=2@3,seed=9")
        engine.adversary.nodes_crashed += 1
        with pytest.raises(RuntimeError, match="nodes_crashed"):
            engine.reconcile_accounting()

    def test_faultless_engine_reconciles_to_empty(self):
        topology = graphs.cycle(4)
        rng = RandomSource(0)
        nodes = [
            _Chatter(v, topology.degree(v), rng.spawn())
            for v in range(topology.n)
        ]
        engine = SynchronousEngine(topology, nodes, MetricsRecorder())
        engine.run(max_rounds=10)
        assert engine.reconcile_accounting() == {}
