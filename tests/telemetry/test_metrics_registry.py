"""MetricsRegistry: instruments, snapshot/delta/merge, exporters."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import MetricsRegistry, metrics_registry, reset_metrics


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test_gauge")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 5

    def test_histogram_buckets_are_le_bounds(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            histogram.observe(value)
        # slots: <=0.1, <=1.0, <=10.0, +Inf
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(105.65)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.gauge("repro_test_total")


class TestSnapshotDeltaMerge:
    def test_delta_omits_unmoved_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h").observe(0.2)
        before = registry.snapshot()
        registry.counter("a").inc(2)
        delta = registry.delta(before)
        assert delta == {"a": {"kind": "counter", "value": 2}}

    def test_counter_delta_roundtrips_through_merge(self):
        # The pool-worker pattern: child ships a delta, parent folds it in.
        parent = MetricsRegistry()
        parent.counter("a").inc(10)
        child = MetricsRegistry()
        base = child.snapshot()
        child.counter("a").inc(4)
        child.counter("b").inc(1)
        parent.merge(child.delta(base))
        assert parent.counter("a").value == 14
        assert parent.counter("b").value == 1

    def test_gauge_merge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.merge({"g": {"kind": "gauge", "value": 9}})
        assert registry.gauge("g").value == 9

    def test_histogram_merge_adds_counts(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.histogram("h", buckets=(1.0,)).observe(0.5)
        right.histogram("h", buckets=(1.0,)).observe(2.0)
        left.merge(right.snapshot())
        merged = left.histogram("h", buckets=(1.0,))
        assert merged.counts == [1, 1]
        assert merged.count == 2
        assert merged.sum == pytest.approx(2.5)

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            registry.merge(
                {
                    "h": {
                        "kind": "histogram",
                        "buckets": [2.0],
                        "counts": [0, 0],
                        "sum": 0.0,
                        "count": 0,
                    }
                }
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry().merge({"x": {"kind": "summary", "value": 1}})


class TestExporters:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", help="runs").inc(2)
        histogram = registry.histogram("repro_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(9.0)
        text = registry.to_prometheus()
        assert "# HELP repro_runs_total runs" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 2" in text
        # Buckets are cumulative, closed by +Inf, sum and count.
        assert 'repro_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_seconds_sum 9.55" in text
        assert "repro_seconds_count 3" in text

    def test_json_export_is_serializable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(0.01)
        payload = json.loads(json.dumps(registry.to_json()))
        assert payload["metrics"]["a"] == {"kind": "counter", "value": 1}
        assert payload["metrics"]["g"]["value"] == 2.5
        assert payload["metrics"]["h"]["count"] == 1


def test_process_registry_is_shared_and_resettable():
    metrics_registry().counter("repro_shared_total").inc()
    assert metrics_registry().counter("repro_shared_total").value == 1
    reset_metrics()
    assert metrics_registry().get("repro_shared_total") is None
