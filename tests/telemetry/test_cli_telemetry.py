"""CLI surface of the telemetry spine: --trace/--profile, profile, trace
validate, fabric status throughput."""

from __future__ import annotations

import json

from repro.cli import main
from repro.telemetry import validate_file


class TestTraceFlag:
    def test_elect_trace_is_schema_valid(self, tmp_path, capsys):
        trace = tmp_path / "elect.jsonl"
        assert main(
            ["elect", "--topology", "complete", "-n", "32",
             "--drop-rate", "0.05", "--trace", str(trace)]
        ) == 0
        counts = validate_file(trace)
        assert counts["engine_start"] == 1
        assert counts["engine_end"] == 1
        assert counts["round"] >= 1

    def test_sweep_trace_covers_run_and_trial_spans(self, tmp_path, capsys):
        trace = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
             "--trials", "2", "--jobs", "2", "--no-cache",
             "--trace", str(trace)]
        ) == 0
        counts = validate_file(trace)
        assert counts["run_start"] == 1
        assert counts["run_end"] == 1
        assert counts["trial_start"] == 4
        assert counts["trial_end"] == 4
        assert counts["engine_start"] == 4

    def test_worker_inherits_trace_through_fabric(self, tmp_path, capsys):
        trace = tmp_path / "fab.jsonl"
        assert main(
            ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
             "--trials", "2", "--fabric", str(tmp_path / "fab"),
             "--workers", "2", "--no-cache", "--trace", str(trace)]
        ) == 0
        counts = validate_file(trace)
        assert counts["run_start"] == 1
        assert counts["worker_start"] >= 2
        assert counts["shard_claim"] == 2
        assert counts["shard_done"] == 2
        assert counts["engine_start"] == 4


class TestTraceValidateCommand:
    def test_valid_file_reports_counts(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["elect", "--topology", "complete", "-n", "16",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "engine_start:1" in out

    def test_invalid_file_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v":1,"event":"teleport","ts":1.0}\n')
        assert main(["trace", "validate", str(bad)]) == 2
        assert "unknown event" in capsys.readouterr().err

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["trace", "validate", str(tmp_path / "nope.jsonl")]) == 2


class TestProfileSurface:
    def test_profile_command_prints_phase_table(self, capsys):
        assert main(
            ["profile", "--scenario", "ring-le-lossy/lcr", "--sizes", "8,12",
             "--trials", "2", "--jobs", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase profile: ring-le-lossy/lcr" in out
        assert "engine.gather" in out
        assert "engine.step" in out
        assert "engine.deliver" in out

    def test_profile_command_merges_pooled_workers(self, capsys):
        assert main(
            ["profile", "--scenario", "ring-le/lcr", "--sizes", "8,12",
             "--trials", "2", "--jobs", "2"]
        ) == 0
        assert "engine.step" in capsys.readouterr().out

    def test_unknown_scenario_is_exit_2(self, capsys):
        assert main(["profile", "--scenario", "no-such"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_profile_flag_never_changes_output(self, capsys):
        argv = ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
                "--trials", "2", "--jobs", "1", "--no-cache"]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(argv + ["--profile"]) == 0
        assert capsys.readouterr().out == bare


class TestFabricStatusThroughput:
    def _sweep(self, fabric_dir):
        return main(
            ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
             "--trials", "2", "--fabric", str(fabric_dir), "--workers", "2",
             "--no-cache"]
        )

    def test_status_shows_per_worker_rates(self, tmp_path, capsys):
        assert self._sweep(tmp_path / "fab") == 0
        capsys.readouterr()
        assert main(["fabric", "status", str(tmp_path / "fab")]) == 0
        out = capsys.readouterr().out
        assert "trials/min" in out
        assert "shards/min" in out

    def test_status_json_exposes_counters(self, tmp_path, capsys):
        assert self._sweep(tmp_path / "fab") == 0
        capsys.readouterr()
        assert main(["fabric", "status", str(tmp_path / "fab"), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        detail = status["workers"]["detail"]
        assert len(detail) >= 2
        executed = sum(r["counters"]["trials_executed"] for r in detail)
        assert executed == 4  # 2 sizes x 2 trials
        assert all(r["trials_per_min"] is not None for r in detail)

    def test_watch_exits_when_job_is_drained(self, tmp_path, capsys):
        assert self._sweep(tmp_path / "fab") == 0
        capsys.readouterr()
        assert main(
            ["fabric", "status", str(tmp_path / "fab"), "--watch",
             "--interval", "0.1"]
        ) == 0
        assert "shards   : 2 done" in capsys.readouterr().out


class TestLogLevel:
    def test_root_flag_accepted(self, capsys):
        assert main(["--log-level", "debug", "list"]) == 0
        assert capsys.readouterr().out
