"""JSONL tracer: record shape, schema validation, env resolution."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.telemetry import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    JsonlTracer,
    TraceSchemaError,
    current_tracer,
    reset_telemetry,
    set_trace_path,
    validate_file,
    validate_record,
)


class TestJsonlTracer:
    def test_emits_versioned_envelope(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        tracer.emit("worker_start", worker="w0", fabric="/tmp/fab")
        tracer.close()
        record = json.loads(path.read_text())
        assert record["v"] == TRACE_SCHEMA_VERSION
        assert record["event"] == "worker_start"
        assert isinstance(record["ts"], float)
        assert record["worker"] == "w0"

    def test_numpy_scalars_serialize_as_plain_numbers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        tracer.emit(
            "round",
            label="x",
            round=np.int64(3),
            sent=np.int32(5),
            units=7,
            dropped=0,
            delayed=0,
            duplicated=0,
        )
        tracer.close()
        record = json.loads(path.read_text())
        assert record["round"] == 3 and isinstance(record["round"], int)
        validate_record(record)

    def test_appends_across_reopens(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for index in range(2):
            tracer = JsonlTracer(path)
            tracer.emit("shard_claim", worker="w", shard=f"p{index}", mode="claim")
            tracer.close()
        assert len(path.read_text().splitlines()) == 2

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("round")  # no-op, no error
        NULL_TRACER.close()

    def test_env_resolution(self, tmp_path, monkeypatch):
        assert current_tracer() is NULL_TRACER
        trace = tmp_path / "env.jsonl"
        set_trace_path(trace)
        tracer = current_tracer()
        assert tracer.enabled and tracer.path == str(trace)
        assert current_tracer() is tracer  # cached until the path changes
        set_trace_path(None)
        assert current_tracer() is NULL_TRACER

    def test_reset_telemetry_drops_cached_tracer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "a.jsonl"))
        first = current_tracer()
        reset_telemetry()
        assert current_tracer() is not first


class TestValidateRecord:
    def _round(self, **overrides):
        record = {
            "v": TRACE_SCHEMA_VERSION,
            "event": "round",
            "ts": 1.0,
            "label": "x",
            "round": 0,
            "sent": 1,
            "units": 1,
            "dropped": 0,
            "delayed": 0,
            "duplicated": 0,
        }
        record.update(overrides)
        return record

    def test_valid_record_passes(self):
        validate_record(self._round())

    def test_wrong_version_rejected(self):
        with pytest.raises(TraceSchemaError, match="schema version"):
            validate_record(self._round(v=99))

    def test_unknown_event_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown event"):
            validate_record(self._round(event="teleport"))

    def test_missing_required_field_rejected(self):
        record = self._round()
        del record["dropped"]
        with pytest.raises(TraceSchemaError, match="missing required field"):
            validate_record(record)

    def test_int_fields_type_checked(self):
        with pytest.raises(TraceSchemaError, match="must be an int"):
            validate_record(self._round(sent="5"))

    def test_extra_fields_allowed(self):
        validate_record(self._round(custom="annotation"))


class TestValidateFile:
    def test_counts_per_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        tracer.emit("worker_start", worker="w", fabric="f")
        tracer.emit("shard_claim", worker="w", shard="p0", mode="claim")
        tracer.emit("shard_claim", worker="w", shard="p1", mode="steal")
        tracer.close()
        assert validate_file(path) == {"worker_start": 1, "shard_claim": 2}

    def test_offending_line_is_named(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(
            {"v": TRACE_SCHEMA_VERSION, "event": "worker_start", "ts": 1.0,
             "worker": "w", "fabric": "f"}
        )
        path.write_text(good + "\n{not json\n")
        with pytest.raises(TraceSchemaError, match=r"bad\.jsonl:2"):
            validate_file(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n\n")
        assert validate_file(path) == {}
