"""Tests for repro.util.fault."""

import pytest

from repro.util.fault import FaultInjector


class TestFaultInjector:
    def test_unarmed_site_never_fails(self):
        faults = FaultInjector()
        assert not faults.should_fail("anything")

    def test_forced_failure_consumed_once(self):
        faults = FaultInjector()
        faults.force("site", times=1)
        assert faults.should_fail("site")
        assert not faults.should_fail("site")

    def test_multiple_forced_failures(self):
        faults = FaultInjector()
        faults.force("site", times=3)
        assert sum(faults.should_fail("site") for _ in range(5)) == 3

    def test_force_always(self):
        faults = FaultInjector()
        faults.force_always("site")
        assert all(faults.should_fail("site") for _ in range(10))

    def test_clear_specific_site(self):
        faults = FaultInjector()
        faults.force("a", times=2)
        faults.force("b", times=2)
        faults.clear("a")
        assert not faults.should_fail("a")
        assert faults.should_fail("b")

    def test_clear_all(self):
        faults = FaultInjector()
        faults.force("a")
        faults.force_always("b")
        faults.clear()
        assert not faults.should_fail("a")
        assert not faults.should_fail("b")

    def test_triggered_counter(self):
        faults = FaultInjector()
        faults.force("x", times=2)
        faults.should_fail("x")
        faults.should_fail("x")
        faults.should_fail("x")
        assert faults.triggered["x"] == 2

    def test_armed_sites_listing(self):
        faults = FaultInjector()
        faults.force("a")
        faults.force_always("b")
        assert faults.armed_sites == {"a", "b"}
        faults.should_fail("a")
        assert faults.armed_sites == {"b"}

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            FaultInjector().force("x", times=0)
