"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import RandomSource, SharedCoin


class TestRandomSource:
    def test_same_seed_reproduces_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.uniform_int(0, 100) for _ in range(20)] == [
            b.uniform_int(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.uniform_int(0, 10**9) for _ in range(5)] != [
            b.uniform_int(0, 10**9) for _ in range(5)
        ]

    def test_spawn_children_are_independent_and_reproducible(self):
        children_a = RandomSource(3).spawn_many(4)
        children_b = RandomSource(3).spawn_many(4)
        streams_a = [[c.uniform_int(0, 10**9) for _ in range(5)] for c in children_a]
        streams_b = [[c.uniform_int(0, 10**9) for _ in range(5)] for c in children_b]
        assert streams_a == streams_b
        # distinct children produce distinct streams
        assert streams_a[0] != streams_a[1]

    def test_spawn_differs_from_parent_stream(self):
        parent = RandomSource(5)
        child = parent.spawn()
        assert [parent.uniform_int(0, 10**9) for _ in range(5)] != [
            child.uniform_int(0, 10**9) for _ in range(5)
        ]

    def test_bernoulli_bounds(self):
        src = RandomSource(0)
        assert all(not src.bernoulli(0.0) for _ in range(50))
        assert all(src.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandomSource(0).bernoulli(1.5)
        with pytest.raises(ValueError):
            RandomSource(0).bernoulli(-0.1)

    def test_bernoulli_rate_roughly_matches(self):
        src = RandomSource(42)
        hits = sum(src.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_uniform_int_inclusive_range(self):
        src = RandomSource(9)
        values = {src.uniform_int(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_uniform_int_single_point(self):
        assert RandomSource(0).uniform_int(4, 4) == 4

    def test_uniform_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            RandomSource(0).uniform_int(5, 4)

    def test_uniform_in_unit_interval(self):
        src = RandomSource(1)
        assert all(0.0 <= src.uniform() < 1.0 for _ in range(100))

    def test_sample_without_replacement_distinct(self):
        src = RandomSource(2)
        sample = src.sample_without_replacement(50, 20)
        assert len(set(int(x) for x in sample)) == 20
        assert all(0 <= x < 50 for x in sample)

    def test_sample_without_replacement_rejects_oversample(self):
        with pytest.raises(ValueError):
            RandomSource(0).sample_without_replacement(3, 5)

    def test_shuffled_is_permutation(self):
        src = RandomSource(3)
        items = list(range(30))
        shuffled = src.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(30))  # original untouched

    def test_seed_entropy_exposed(self):
        assert RandomSource(123).seed_entropy == 123

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(77)
        src = RandomSource(seq)
        assert src.seed_entropy == 77


class TestSharedCoin:
    def test_values_in_unit_interval(self):
        coin = SharedCoin(RandomSource(0))
        assert all(0.0 <= coin.next_uniform() < 1.0 for _ in range(50))

    def test_flip_counter(self):
        coin = SharedCoin(RandomSource(0))
        coin.next_uniform()
        coin.next_bits(3)
        assert coin.flips == 4

    def test_bits_are_binary(self):
        coin = SharedCoin(RandomSource(1))
        assert set(coin.next_bits(200)) <= {0, 1}

    def test_same_seed_same_shared_sequence(self):
        a = SharedCoin(RandomSource(5))
        b = SharedCoin(RandomSource(5))
        assert [a.next_uniform() for _ in range(10)] == [
            b.next_uniform() for _ in range(10)
        ]
