"""Tests for repro.util.ledger."""

import pytest

from repro.util.ledger import CostLedger, LedgerEntry


class TestCostLedger:
    def test_empty_ledger_totals(self):
        ledger = CostLedger()
        assert ledger.total_messages == 0
        assert ledger.total_rounds == 0

    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge("a", messages=3, rounds=1)
        ledger.charge("b", messages=4, rounds=2)
        assert ledger.total_messages == 7
        assert ledger.total_rounds == 3

    def test_rejects_negative_charges(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge("bad", messages=-1)
        with pytest.raises(ValueError):
            ledger.charge("bad", rounds=-2)

    def test_messages_by_label_groups(self):
        ledger = CostLedger()
        ledger.charge("x", messages=2)
        ledger.charge("x", messages=3)
        ledger.charge("y", messages=5)
        assert ledger.messages_by_label() == {"x": 5, "y": 5}

    def test_messages_by_prefix(self):
        ledger = CostLedger()
        ledger.charge("grover.checking", messages=2)
        ledger.charge("grover.verify", messages=1)
        ledger.charge("referees", messages=4)
        assert ledger.messages_by_prefix() == {"grover": 3, "referees": 4}

    def test_merge_preserves_entries(self):
        a = CostLedger()
        a.charge("one", messages=1, rounds=1)
        b = CostLedger()
        b.charge("two", messages=2, rounds=2)
        a.merge(b)
        assert a.total_messages == 3
        assert a.total_rounds == 3
        assert len(a.entries) == 2

    def test_entries_are_frozen(self):
        entry = LedgerEntry(label="x", messages=1, rounds=0)
        with pytest.raises(AttributeError):
            entry.messages = 5  # type: ignore[misc]

    def test_summary_mentions_totals_and_labels(self):
        ledger = CostLedger()
        ledger.charge("alpha", messages=10, rounds=2)
        text = ledger.summary()
        assert "10 messages" in text
        assert "alpha" in text
