"""Tests for repro.util.mathx."""

import math

import pytest

from repro.util.mathx import (
    binomial,
    ceil_div,
    ceil_log2,
    ceil_sqrt,
    is_power_of_two,
    log_ceil,
    polylog,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_rejects_nonpositive_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestCeilSqrt:
    def test_perfect_square(self):
        assert ceil_sqrt(49) == 7

    def test_rounds_up(self):
        assert ceil_sqrt(50) == 8

    def test_zero(self):
        assert ceil_sqrt(0) == 0

    def test_fractional_input(self):
        assert ceil_sqrt(0.25) == 1  # clamped to >= 1 for positive input

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ceil_sqrt(-1)


class TestCeilLog2:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10)])
    def test_values(self, value, expected):
        assert ceil_log2(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestLogCeil:
    def test_basic(self):
        assert log_ceil(math.e**3) == 3

    def test_minimum_floor(self):
        assert log_ceil(1.0) == 1
        assert log_ceil(2.0, minimum=5) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_ceil(0.0)


class TestPolylog:
    def test_power_one(self):
        assert polylog(100) == pytest.approx(math.log(100))

    def test_power_three(self):
        assert polylog(100, 3) == pytest.approx(math.log(100) ** 3)

    def test_clamps_small_n(self):
        assert polylog(1) == pytest.approx(math.log(2))


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(20))

    def test_non_powers(self):
        assert not any(is_power_of_two(v) for v in [0, 3, 5, 6, 7, 9, 12, -4])


class TestBinomial:
    def test_matches_math_comb(self):
        assert binomial(10, 4) == math.comb(10, 4)

    def test_out_of_range_is_zero(self):
        assert binomial(5, 7) == 0
        assert binomial(5, -1) == 0
        assert binomial(-2, 1) == 0
