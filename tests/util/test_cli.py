"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.topology is None  # handler defaults paired mode to complete
        assert args.protocol is None
        assert args.n == 1024

    def test_elect_rejects_unpaired_topology_in_paired_mode(self, capsys):
        # Validation moved from the parser to the handler so that
        # single-protocol mode can accept any topology family.
        assert main(["elect", "--topology", "torus", "-n", "8"]) == 2
        assert "torus" in capsys.readouterr().err


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i} " in out or f"E{i}\t" in out or f"E{i}  " in out

    def test_info_known_experiment(self, capsys):
        assert main(["info", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5.2" in out
        assert "bench_e01" in out

    def test_info_unknown_experiment(self, capsys):
        assert main(["info", "E99"]) == 2

    def test_elect_complete_small(self, capsys):
        code = main(["elect", "--topology", "complete", "--n", "128", "--seed", "3"])
        out = capsys.readouterr().out
        assert "quantum" in out and "classical" in out
        assert code in (0, 1)  # success expected w.h.p., failure tolerated

    def test_agree_small(self, capsys):
        code = main(["agree", "--n", "256", "--seed", "1"])
        out = capsys.readouterr().out
        assert "implicit agreement" in out
        assert code in (0, 1)

    def test_routing_demo(self, capsys):
        assert main(["routing-demo", "--leaves", "3"]) == 0
        out = capsys.readouterr().out
        assert "message complexity = 1" in out


class TestSweepParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--experiment", "E1"])
        assert args.experiment == "E1"
        assert args.scenario is None
        assert args.jobs is None  # all cores

    def test_scenarios_parses(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"


class TestSweepCommand:
    def test_requires_exactly_one_target(self, capsys):
        assert main(["sweep"]) == 2
        assert main(["sweep", "--experiment", "E1", "--scenario", "ring-le/hs"]) == 2

    def test_experiment_smoke(self, capsys):
        code = main(
            ["sweep", "--experiment", "E1", "--sizes", "16,32",
             "--trials", "2", "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "complete-le/quantum" in out
        assert "ratio (c/q)" in out
        assert "success rates" in out

    def test_unmapped_experiment_is_an_error(self, capsys):
        assert main(["sweep", "--experiment", "E2"]) == 2
        assert "bench" in capsys.readouterr().err

    def test_single_scenario_smoke(self, capsys):
        code = main(
            ["sweep", "--scenario", "ring-le/hs", "--sizes", "8,16",
             "--trials", "2", "--jobs", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ring-le/hs" in out
        assert "p90" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["sweep", "--scenario", "le-donut/quantum"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestScenariosCommand:
    def test_lists_catalogue(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "complete-le/quantum" in out
        assert "torus-le/quantum" in out

    def test_lists_protocols(self, capsys):
        assert main(["scenarios", "--protocols"]) == 0
        out = capsys.readouterr().out
        assert "le-diameter2/quantum" in out
        assert "quantum" in out and "classical" in out


class TestAdversaryFlags:
    def test_parser_accepts_adversary_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--scenario", "ring-le/lcr", "--drop-rate", "0.1",
             "--crash", "2@4", "--adversary", "delay=0.05"]
        )
        assert args.drop_rate == 0.1
        assert args.crash == "2@4"
        assert args.adversary == "delay=0.05"

    def test_elect_with_drop_rate(self, capsys):
        code = main(
            ["elect", "--topology", "complete", "--n", "64", "--seed", "3",
             "--drop-rate", "0.05"]
        )
        captured = capsys.readouterr()
        assert "adversary [drop=0.05] armed" in captured.err
        assert code in (0, 1)

    def test_elect_rejects_faults_on_non_engine_protocol(self, capsys):
        code = main(
            ["elect", "--topology", "hypercube", "--n", "16", "--drop-rate", "0.1"]
        )
        assert code == 2
        assert "does not support adversary" in capsys.readouterr().err

    def test_bad_adversary_spec_is_an_error(self, capsys):
        assert main(["elect", "--adversary", "explode=1"]) == 2
        assert "unknown adversary key" in capsys.readouterr().err

    def test_agree_with_input_schedule(self, capsys):
        code = main(
            ["agree", "--n", "128", "--seed", "1", "--adversary", "input=tie"]
        )
        out = capsys.readouterr().out
        assert "adversary [input=tie]" in out
        assert code in (0, 1)

    def test_agree_arms_message_faults_on_engine_row_only(self, capsys):
        code = main(["agree", "--n", "64", "--seed", "1", "--drop-rate", "0.1"])
        captured = capsys.readouterr()
        assert "armed on the engine-driven row only" in captured.err
        assert "adversary [drop=0.1]" in captured.out
        assert code in (0, 1)

    def test_agree_with_adaptive_strategy(self, capsys):
        code = main(
            ["agree", "--n", "64", "--seed", "1", "--adaptive", "target-leader"]
        )
        captured = capsys.readouterr()
        assert "armed on the engine-driven row only" in captured.err
        assert code in (0, 1)

    def test_agree_rejects_engine_faults_below_engine_minimum(self, capsys):
        assert main(["agree", "--n", "2", "--drop-rate", "0.1"]) == 2
        assert "needs n >= 3" in capsys.readouterr().err

    def test_sweep_with_drop_rate_end_to_end(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        argv = ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,16",
                "--trials", "2", "--jobs", "1", "--drop-rate", "0.1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "adversary [drop=0.1]" in out
        # The fault sweep cached under its own (adversary-aware) keys...
        faulty_entries = sorted(tmp_path.glob("*.json"))
        assert len(faulty_entries) == 2
        # ... and a cached re-run reproduces the same table.
        assert main(argv) == 0
        assert capsys.readouterr().out == out
        # The fault-free sweep misses those keys and writes its own.
        assert main(argv[:-2]) == 0
        assert len(sorted(tmp_path.glob("*.json"))) == 4

    def test_sweep_experiment_arms_supporting_side_only(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        code = main(
            ["sweep", "--experiment", "E1", "--sizes", "32", "--trials", "1",
             "--jobs", "1", "--drop-rate", "0.05"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "armed on the classical side only" in captured.err

    def test_sweep_experiment_with_no_supporting_side_errors(self, capsys):
        code = main(
            ["sweep", "--experiment", "E3", "--sizes", "64", "--trials", "1",
             "--jobs", "1", "--drop-rate", "0.05"]
        )
        assert code == 2
        assert "neither side of E3" in capsys.readouterr().err

    def test_sweep_fault_scenario_from_catalogue(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        code = main(
            ["sweep", "--scenario", "complete-le-lossy/classical",
             "--sizes", "64", "--trials", "2", "--jobs", "1"]
        )
        assert code == 0
        assert "adversary [drop=0.05]" in capsys.readouterr().out

    def test_explicit_zero_drop_rate_strips_catalogue_adversary(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        lossy = ["sweep", "--scenario", "ring-le-lossy/lcr", "--sizes", "32",
                 "--trials", "3", "--jobs", "1"]
        assert main(lossy) == 0
        lossy_out = capsys.readouterr().out
        assert "adversary [drop=0.02]" in lossy_out
        # --drop-rate 0 is a request for the fault-free baseline, not a no-op.
        assert main(lossy + ["--drop-rate", "0"]) == 0
        baseline_out = capsys.readouterr().out
        assert "adversary" not in baseline_out
        assert baseline_out != lossy_out
        # ... and --adversary none does the same.
        assert main(lossy + ["--adversary", "none"]) == 0
        assert "adversary" not in capsys.readouterr().out

    def test_scenarios_table_shows_adversary_column(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "ring-le-lossy/lcr" in out
        assert "drop=0.02" in out


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert "entries    : 0" in capsys.readouterr().out
        main(["sweep", "--scenario", "ring-le/lcr", "--sizes", "8",
              "--trials", "1", "--jobs", "1"])
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "entries    : 1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_list_empty_and_populated(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        assert main(["cache", "list"]) == 0
        assert "empty" in capsys.readouterr().out
        main(["sweep", "--scenario", "ring-le/lcr", "--sizes", "8",
              "--trials", "1", "--jobs", "1", "--drop-rate", "0.1"])
        capsys.readouterr()
        assert main(["cache", "list"]) == 0
        out = capsys.readouterr().out
        assert "ring-le/lcr" in out
        assert "yes" in out  # adversary column

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestNodeApiFlag:
    def test_parser_accepts_node_api(self):
        for command in (["elect"], ["agree"], ["sweep", "--experiment", "E1"]):
            args = build_parser().parse_args(command + ["--node-api", "batch"])
            assert args.node_api == "batch"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["elect", "--node-api", "vector"])

    def test_elect_complete_batch(self, capsys):
        code = main(
            ["elect", "--topology", "complete", "--n", "64", "--seed", "3",
             "--node-api", "batch"]
        )
        assert "classical" in capsys.readouterr().out
        assert code in (0, 1)

    def test_elect_batch_and_scalar_agree(self, capsys):
        argv = ["elect", "--topology", "complete", "--n", "64", "--seed", "5"]
        assert main(argv + ["--node-api", "batch"]) in (0, 1)
        batch_out = capsys.readouterr().out
        assert main(argv + ["--node-api", "scalar"]) in (0, 1)
        assert capsys.readouterr().out == batch_out

    def test_agree_shows_engine_row(self, capsys):
        code = main(["agree", "--n", "64", "--seed", "1", "--node-api", "batch"])
        out = capsys.readouterr().out
        assert "engine[batch]" in out
        assert code in (0, 1)

    def test_agree_k2_still_works_without_engine_row(self, capsys):
        # The engine-driven row needs n >= 3; K_2 keeps the legacy rows.
        code = main(["agree", "--n", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert "quantum" in out and "classical" in out
        assert "engine[" not in out
        assert code in (0, 1)

    def test_sweep_scenario_node_api_caches_separately(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path))
        argv = ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8",
                "--trials", "2", "--jobs", "1"]
        assert main(argv + ["--node-api", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert "node-api batch" in batch_out
        assert main(argv + ["--node-api", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        # Bit-identical aggregates, separately-cached trial sets.
        assert len(sorted(tmp_path.glob("*.json"))) == 2
        strip = lambda s: s.replace("node-api batch", "").replace(", )", ")")
        assert [r for r in strip(batch_out).splitlines() if "|" in r] == [
            r for r in strip(scalar_out).splitlines() if "|" in r
        ]

    def test_sweep_batch_on_scalar_only_scenario_errors(self, capsys):
        code = main(
            ["sweep", "--scenario", "general-le/classical", "--sizes", "8",
             "--trials", "1", "--jobs", "1", "--node-api", "batch",
             "--no-cache"]
        )
        assert code == 2
        assert "array-native" in capsys.readouterr().err

    def test_sweep_experiment_batch_arms_supporting_side_only(self, capsys):
        code = main(
            ["sweep", "--experiment", "E1", "--sizes", "16", "--trials", "1",
             "--jobs", "1", "--no-cache", "--node-api", "batch"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "classical side only" in captured.err


class TestKernelFlag:
    def test_parser_accepts_kernel(self):
        for command in (["elect"], ["agree"], ["sweep", "--experiment", "E1"]):
            args = build_parser().parse_args(command + ["--kernel", "numpy"])
            assert args.kernel == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["elect", "--kernel", "fortran"])

    def test_explicit_numba_without_numba_is_exit_2(self, capsys, monkeypatch):
        from repro.network.kernels import numba_available

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        if numba_available():
            pytest.skip("numba installed: explicit request succeeds")
        code = main(
            ["elect", "le-ring/lcr", "--topology", "cycle", "-n", "16",
             "--kernel", "numba"]
        )
        assert code == 2
        assert "numba is not installed" in capsys.readouterr().err

    def test_kernel_does_not_change_elect_output(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        argv = ["elect", "le-ring/lcr", "--topology", "cycle", "-n", "32",
                "--seed", "9"]
        assert main(argv + ["--kernel", "numpy"]) == 0
        numpy_out = capsys.readouterr().out
        assert main(argv + ["--kernel", "auto"]) == 0
        auto_out = capsys.readouterr().out
        strip = lambda s: s.replace("kernel numpy", "").replace(
            "kernel numba", ""
        ).replace("kernel auto", "")
        assert strip(numpy_out) == strip(auto_out)


class TestElectSingleProtocol:
    def test_single_protocol_run(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        code = main(
            ["elect", "le-ring/lcr", "--topology", "cycle", "-n", "24",
             "--seed", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "le-ring/lcr on cycle, n=24" in out
        assert "success=True" in out

    def test_single_protocol_default_topology(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        code = main(["elect", "le-diameter2/classical", "-n", "16", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "le-diameter2/classical" in out

    def test_unknown_protocol_is_exit_2(self, capsys):
        assert main(["elect", "le-donut/lcr", "-n", "8"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_paired_mode_rejects_unpaired_topology(self, capsys):
        assert main(["elect", "--topology", "cycle", "-n", "8"]) == 2
        err = capsys.readouterr().err
        assert "explicit protocol" in err


class TestProtocolsCommand:
    def test_table_lists_supports_column(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "agreement/amp18-engine" in out
        assert "batch,faults" in out

    def test_json_dump_is_machine_readable(self, capsys):
        import json

        assert main(["protocols", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["le-ring/lcr"]["supports"] == ["adaptive", "batch", "faults"]
        assert by_name["le-ring/hs"]["supports"] == ["adaptive", "batch", "faults"]
        assert by_name["mst/boruvka-engine"]["supports"] == ["adaptive", "batch", "faults"]
        assert by_name["le-ring/hs"]["batch"] is True
        assert by_name["le-general/classical"]["batch"] is False
        assert by_name["le-ring/hs"]["kernel"] in ("numpy", "numba")
        assert by_name["agreement/amp18-engine"]["defaults"] == {"fraction": 0.3}

    def test_scenarios_json_dump(self, capsys):
        import json

        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["ring-le/lcr"]["resolved_node_api"] == "batch"
        assert by_name["ring-le/hs"]["resolved_node_api"] == "batch"
        assert by_name["ring-le/hs"]["kernel"] in ("numpy", "numba")
        assert by_name["ring-le-lossy/lcr"]["adversary"]["drop_rate"] == 0.02
        assert by_name["complete-le/quantum"]["sizes"] == [256, 1024, 4096]

    def test_scenarios_protocols_flag_still_works(self, capsys):
        assert main(["scenarios", "--protocols", "--json"]) == 0
        import json

        assert any(
            entry["name"] == "le-diameter2/quantum"
            for entry in json.loads(capsys.readouterr().out)
        )


class TestElectTopologies:
    def test_diameter2_uses_true_diameter2_graph(self, capsys):
        # regression: used to draw erdos_renyi(n, 0.5) with no diameter check
        code = main(["elect", "--topology", "diameter2", "--n", "24", "--seed", "2"])
        out = capsys.readouterr().out
        assert "leader election on diameter2" in out
        assert code in (0, 1)

    def test_hypercube_warns_on_rounding(self, capsys):
        code = main(["elect", "--topology", "hypercube", "--n", "20", "--seed", "1"])
        captured = capsys.readouterr()
        assert "power of two" in captured.err
        assert "n=32" in captured.out
        assert code in (0, 1)

    def test_hypercube_exact_power_no_warning(self, capsys):
        code = main(["elect", "--topology", "hypercube", "--n", "16", "--seed", "1"])
        captured = capsys.readouterr()
        assert "power of two" not in captured.err
        assert code in (0, 1)
