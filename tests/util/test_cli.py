"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.topology == "complete"
        assert args.n == 1024

    def test_elect_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["elect", "--topology", "torus"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i} " in out or f"E{i}\t" in out or f"E{i}  " in out

    def test_info_known_experiment(self, capsys):
        assert main(["info", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5.2" in out
        assert "bench_e01" in out

    def test_info_unknown_experiment(self, capsys):
        assert main(["info", "E99"]) == 2

    def test_elect_complete_small(self, capsys):
        code = main(["elect", "--topology", "complete", "--n", "128", "--seed", "3"])
        out = capsys.readouterr().out
        assert "quantum" in out and "classical" in out
        assert code in (0, 1)  # success expected w.h.p., failure tolerated

    def test_agree_small(self, capsys):
        code = main(["agree", "--n", "256", "--seed", "1"])
        out = capsys.readouterr().out
        assert "implicit agreement" in out
        assert code in (0, 1)

    def test_routing_demo(self, capsys):
        assert main(["routing-demo", "--leaves", "3"]) == 0
        out = capsys.readouterr().out
        assert "message complexity = 1" in out


class TestSweepParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--experiment", "E1"])
        assert args.experiment == "E1"
        assert args.scenario is None
        assert args.jobs is None  # all cores

    def test_scenarios_parses(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"


class TestSweepCommand:
    def test_requires_exactly_one_target(self, capsys):
        assert main(["sweep"]) == 2
        assert main(["sweep", "--experiment", "E1", "--scenario", "ring-le/hs"]) == 2

    def test_experiment_smoke(self, capsys):
        code = main(
            ["sweep", "--experiment", "E1", "--sizes", "16,32",
             "--trials", "2", "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "complete-le/quantum" in out
        assert "ratio (c/q)" in out
        assert "success rates" in out

    def test_unmapped_experiment_is_an_error(self, capsys):
        assert main(["sweep", "--experiment", "E2"]) == 2
        assert "bench" in capsys.readouterr().err

    def test_single_scenario_smoke(self, capsys):
        code = main(
            ["sweep", "--scenario", "ring-le/hs", "--sizes", "8,16",
             "--trials", "2", "--jobs", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ring-le/hs" in out
        assert "p90" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["sweep", "--scenario", "le-donut/quantum"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestScenariosCommand:
    def test_lists_catalogue(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "complete-le/quantum" in out
        assert "torus-le/quantum" in out

    def test_lists_protocols(self, capsys):
        assert main(["scenarios", "--protocols"]) == 0
        out = capsys.readouterr().out
        assert "le-diameter2/quantum" in out
        assert "quantum" in out and "classical" in out


class TestElectTopologies:
    def test_diameter2_uses_true_diameter2_graph(self, capsys):
        # regression: used to draw erdos_renyi(n, 0.5) with no diameter check
        code = main(["elect", "--topology", "diameter2", "--n", "24", "--seed", "2"])
        out = capsys.readouterr().out
        assert "leader election on diameter2" in out
        assert code in (0, 1)

    def test_hypercube_warns_on_rounding(self, capsys):
        code = main(["elect", "--topology", "hypercube", "--n", "20", "--seed", "1"])
        captured = capsys.readouterr()
        assert "power of two" in captured.err
        assert "n=32" in captured.out
        assert code in (0, 1)

    def test_hypercube_exact_power_no_warning(self, capsys):
        code = main(["elect", "--topology", "hypercube", "--n", "16", "--seed", "1"])
        captured = capsys.readouterr()
        assert "power of two" not in captured.err
        assert code in (0, 1)
