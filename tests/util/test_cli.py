"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.topology == "complete"
        assert args.n == 1024

    def test_elect_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["elect", "--topology", "torus"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i} " in out or f"E{i}\t" in out or f"E{i}  " in out

    def test_info_known_experiment(self, capsys):
        assert main(["info", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5.2" in out
        assert "bench_e01" in out

    def test_info_unknown_experiment(self, capsys):
        assert main(["info", "E99"]) == 2

    def test_elect_complete_small(self, capsys):
        code = main(["elect", "--topology", "complete", "--n", "128", "--seed", "3"])
        out = capsys.readouterr().out
        assert "quantum" in out and "classical" in out
        assert code in (0, 1)  # success expected w.h.p., failure tolerated

    def test_agree_small(self, capsys):
        code = main(["agree", "--n", "256", "--seed", "1"])
        out = capsys.readouterr().out
        assert "implicit agreement" in out
        assert code in (0, 1)

    def test_routing_demo(self, capsys):
        assert main(["routing-demo", "--leaves", "3"]) == 0
        out = capsys.readouterr().out
        assert "message complexity = 1" in out
