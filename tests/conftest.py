"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.util.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A fixed-seed random source; tests needing other seeds build their own."""
    return RandomSource(12345)


@pytest.fixture
def make_rng():
    """Factory for seeded random sources."""

    def factory(seed: int = 0) -> RandomSource:
        return RandomSource(seed)

    return factory
