"""Property-based tests for the quantum routing model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import graphs
from repro.quantum.routing import QuantumRoutingNetwork
from repro.util.rng import RandomSource


def _star_network(leaves: int) -> QuantumRoutingNetwork:
    network = QuantumRoutingNetwork(graphs.star(leaves + 1), alphabet_size=1)
    network.allocate_local(0, "ctl", max(leaves, 2))
    network.build()
    return network


class TestSendProperties:
    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_send_is_involution_on_basis_states(self, leaves):
        """Send twice returns every register to its pre-send state."""
        network = _star_network(leaves)
        network.write_message(0, 1, symbol=1)
        before = network.state.probabilities().copy()
        network.send_all()
        network.send_all()
        after = network.state.probabilities()
        assert abs(before - after).max() < 1e-12

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_norm_preserved_through_full_protocol(self, leaves, seed):
        network = _star_network(leaves)
        amplitude = 1.0 / math.sqrt(leaves)
        network.prepare_recipient_superposition(
            0, "ctl", {leaf: amplitude for leaf in range(1, leaves + 1)}
        )
        network.write_message_controlled(0, "ctl", symbol=1)
        network.send_all()
        assert abs(network.state.norm() - 1.0) < 1e-9
        rng = RandomSource(seed)
        outcomes = [
            network.measure_reception(leaf, 0, rng)
            for leaf in range(1, leaves + 1)
        ]
        assert sum(1 for o in outcomes if o == 1) == 1

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_superposed_complexity_always_one(self, leaves):
        """Any recipient superposition still costs exactly one message."""
        network = _star_network(leaves)
        # Biased amplitudes: still one message per branch.
        weights = [2.0 ** (-i) for i in range(leaves)]
        norm = math.sqrt(sum(w**2 for w in weights))
        network.prepare_recipient_superposition(
            0,
            "ctl",
            {leaf: weights[leaf - 1] / norm for leaf in range(1, leaves + 1)},
        )
        network.write_message_controlled(0, "ctl", symbol=1)
        assert network.round_message_complexity() == 1

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_classical_broadcast_complexity_is_degree(self, leaves):
        network = _star_network(leaves)
        for leaf in range(1, leaves + 1):
            network.write_message(0, leaf, symbol=1)
        assert network.round_message_complexity() == leaves
