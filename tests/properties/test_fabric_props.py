"""Property tests: the fabric converges under any interleaving.

Hypothesis drives a *simulated* fleet against the real queue and store —
random shard interleavings, duplicate completions (a worker that never
saw the done marker), crashes that abandon live leases, and stale-lease
takeovers on a synthetic clock.  Whatever the schedule, the final
ResultStore contents and the collected aggregates must be byte-identical
to a serial ``jobs=1`` run: leases are an efficiency mechanism, and no
ordering of them may ever change a result.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import FabricQueue, collect, execute_shard
from repro.runtime import ResultStore, Scenario, TopologySpec, run_scenario

TTL = 10.0

SCENARIO = Scenario(
    name="fabric-prop/star",
    protocol="search-star/classical",
    topology=TopologySpec("star"),
    sizes=(8, 12, 16),
    trials=2,
    seed=23,
)

_BASELINE: dict | None = None


def _baseline() -> dict:
    """Serial run's aggregates and store bytes (computed once)."""
    global _BASELINE
    if _BASELINE is None:
        with tempfile.TemporaryDirectory() as root:
            store = ResultStore(root)
            run = run_scenario(SCENARIO, jobs=1, store=store)
            files = {p.name: p.read_bytes() for p in store.root.glob("*.json")}
        _BASELINE = {"trial_sets": run.trial_sets, "files": files}
    return _BASELINE


#: One fleet event: (worker, grid position, abandons-its-lease?).
EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.booleans(),
    ),
    max_size=10,
)


def _execute_and_complete(queue, store, shard_id, position, worker):
    n = SCENARIO.sizes[position]
    trial_set = execute_shard(SCENARIO, position)
    path = store.save(SCENARIO, n, position, trial_set)
    queue.mark_done(shard_id, worker, {"position": position, "store_file": path.name})


class TestFabricConvergence:
    @given(events=EVENTS)
    @settings(max_examples=20, deadline=None)
    def test_any_interleaving_yields_serial_results(self, events):
        baseline = _baseline()
        with tempfile.TemporaryDirectory() as root:
            queue = FabricQueue(f"{root}/job")
            queue.create_job(SCENARIO, lease_ttl=TTL)
            store = queue.store()
            now = 1000.0
            for worker_index, position, abandon in events:
                worker = f"w{worker_index}"
                shard_id = f"p{position:04d}"
                now += 1.0
                state, lease = queue.lease_state(shard_id, now=now)
                if state == "free":
                    claimed = queue.claim(shard_id, worker, now=now)
                elif state in ("expired", "corrupt"):
                    claimed = queue.break_lease(shard_id, worker, now=now)
                else:
                    # Live lease held elsewhere: this worker raced ahead
                    # anyway — the duplicate-completion path.  (Its own
                    # lease it just keeps working under.)
                    claimed = lease is not None and lease.get("worker") == worker
                if abandon and claimed:
                    # Crash: walk away mid-shard, lease left behind; the
                    # synthetic clock jumps past the TTL so a later event
                    # can take the shard over.
                    now += TTL + 1.0
                    continue
                _execute_and_complete(queue, store, shard_id, position, worker)
                if claimed:
                    queue.release(shard_id, worker)
            # Whatever the schedule did, a final cleanup worker drains the
            # queue the way `run_worker` would.
            for shard_id in queue.pending_shards():
                position = queue.shard(shard_id)["position"]
                _execute_and_complete(queue, store, shard_id, position, "sweeper")
            queue.reap_done_leases()

            run = collect(queue.root)
            assert run.trial_sets == baseline["trial_sets"]
            files = {p.name: p.read_bytes() for p in store.root.glob("*.json")}
            assert files == baseline["files"]
            assert list(store.root.glob("*.tmp")) == []

    @given(events=EVENTS)
    @settings(max_examples=10, deadline=None)
    def test_done_markers_monotone(self, events):
        # Once a shard is done it never reverts to pending, no matter how
        # many duplicate completions or takeovers later touch it.
        with tempfile.TemporaryDirectory() as root:
            queue = FabricQueue(f"{root}/job")
            queue.create_job(SCENARIO, lease_ttl=TTL)
            store = queue.store()
            done_seen: set = set()
            for _, position, _ in events:
                shard_id = f"p{position:04d}"
                _execute_and_complete(queue, store, shard_id, position, "w")
                done_seen.add(shard_id)
                pending = set(queue.pending_shards())
                assert not (done_seen & pending)
