"""Property-based tests for candidate sampling and walk machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    CandidateDraw,
    candidate_probability,
    draw_candidates,
    rank_space,
)
from repro.quantum.walk_model import walk_attempt_success_probability
from repro.util.rng import RandomSource


class TestCandidateProperties:
    @given(
        st.integers(min_value=2, max_value=5000),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60)
    def test_draw_invariants(self, n, seed):
        draw = draw_candidates(n, RandomSource(seed))
        assert isinstance(draw, CandidateDraw)
        assert all(0 <= v < n for v in draw.candidates)
        assert set(draw.ranks) == set(draw.candidates)
        assert all(1 <= r <= rank_space(n) for r in draw.ranks.values())

    @given(st.integers(min_value=2, max_value=10**6))
    def test_probability_in_unit_interval(self, n):
        assert 0.0 < candidate_probability(n) <= 1.0

    @given(st.integers(min_value=1000, max_value=10**6))
    def test_probability_decreasing_regime(self, n):
        """Above the clamp, p(n) strictly decreases (12 ln n / n)."""
        assert candidate_probability(n + 1000) < candidate_probability(n)

    @given(
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_custom_probability_respected_at_extremes(self, n, seed, p):
        draw = draw_candidates(n, RandomSource(seed), probability=round(p))
        if round(p) == 0:
            assert draw.count == 0
        else:
            assert draw.count == n


class TestWalkModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1e-6, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_probability_valid(self, eps_f, eps):
        p = walk_attempt_success_probability(eps_f, eps)
        assert 0.0 <= p <= 1.0 + 1e-9

    @given(st.floats(min_value=1e-6, max_value=0.9))
    @settings(max_examples=60)
    def test_monotone_near_zero(self, eps):
        """More marked measure below the promise never hurts."""
        low = walk_attempt_success_probability(eps / 100.0, eps)
        mid = walk_attempt_success_probability(eps / 10.0, eps)
        assert low <= mid + 1e-9
