"""Property tests: adaptive adversaries are bit-identical on all three paths.

The acceptance bar for the adaptive subsystem: for any traffic-conditioned
spec — targeted-leader suppression, targeted crash, reactive congestion
drops, eavesdropping (passive and intercepting), and combinations with
static faults — the batch dispatch path, the scalar fast backend, and the
scalar reference backend must produce bit-identical trials from the same
seeds.  Covered on the three native batch ports (ring LCR on cycles, KPP
on K_n, CPR diameter-2 on stars and wheels), on raw gossip traces across
five topology families, and through the parallel trial runner
(``jobs=1`` ≡ ``jobs=4``).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import AdversarySpec
from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.ring import lcr_ring
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.runtime import get_scenario, run_scenario
from repro.util.rng import RandomSource

#: The adaptive fault mixes every parity property sweeps: each strategy
#: alone, eavesdropping passive and intercepting, and compositions with
#: the static fault classes (whose RNG draws must interleave identically).
ADAPTIVE_ADVERSARIES = [
    AdversarySpec(adaptive="target-leader"),
    AdversarySpec(adaptive="target-leader", adaptive_rate=0.5),
    AdversarySpec(adaptive="target-leader-crash", adaptive_after=2),
    AdversarySpec(adaptive="congestion", adaptive_rate=0.6),
    AdversarySpec(eavesdrop_rate=0.4),
    AdversarySpec(eavesdrop_rate=0.5, eavesdrop_drop_rate=0.5),
    AdversarySpec(eavesdrop_edges=((0, 0), (1, 1), (2, 0)), eavesdrop_drop_rate=1.0),
    AdversarySpec(drop_rate=0.1, adaptive="target-leader", adaptive_rate=0.5),
    AdversarySpec(delay_rate=0.2, adaptive="congestion", adaptive_rate=0.4),
    AdversarySpec(drop_rate=0.05, eavesdrop_rate=0.3, eavesdrop_drop_rate=0.4),
]

FAMILIES = {
    "cycle": graphs.cycle,
    "complete": graphs.complete,
    "star": graphs.star,
    "wheel": graphs.wheel,
    "path": graphs.path,
}


class _Chatter(Node):
    """Multi-round all-port gossip: every adaptive strategy has targets."""

    def __init__(self, uid, degree, rng, rounds):
        super().__init__(uid, degree, rng)
        self.rounds = rounds
        self.received = []

    def step(self, round_index, inbox):
        self.received.extend(
            (round_index, port, m.sender, m.payload) for port, m in inbox
        )
        if round_index < self.rounds:
            return [
                (p, Message("g", payload=(self.uid, round_index, p)))
                for p in range(self.degree)
            ]
        self.halt()
        return []


def _trace(family, n, spec, seed, backend):
    topology = FAMILIES[family](n)
    rng = RandomSource(seed)
    armed = spec.arm(spec.derive_rng(rng), topology.n)
    nodes = [
        _Chatter(v, topology.degree(v), rng.spawn(), rounds=4)
        for v in range(topology.n)
    ]
    metrics = MetricsRecorder()
    engine = SynchronousEngine(
        topology, nodes, metrics, backend=backend, adversary=armed
    )
    engine.run(max_rounds=12)
    return (
        metrics.messages,
        metrics.rounds,
        engine.rounds_executed,
        engine.undelivered_detail(),
        engine.fault_stats(),
        armed.security_ledger(),
        [node.received for node in nodes],
    )


@settings(max_examples=50, deadline=None)
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    n=st.integers(min_value=4, max_value=9),
    spec=st.sampled_from(ADAPTIVE_ADVERSARIES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_adaptive_trace_equivalence_fast_vs_reference(family, n, spec, seed):
    """Adaptive gossip traces — fault stats and security ledger included —
    match bit for bit across the scalar backends."""
    fast = _trace(family, n, spec, seed, "fast")
    reference = _trace(family, n, spec, seed, "reference")
    assert fast == reference


def _le_snapshot(result):
    return (
        result.messages,
        result.rounds,
        result.success,
        result.leader,
        dict(result.statuses),
        dict(result.meta),
        result.crashed,
    )


def _three_way(run, snapshot=_le_snapshot):
    """(fast-scalar, reference-scalar, batch) snapshots of one trial."""
    fast = snapshot(run("scalar"))
    os.environ["REPRO_ENGINE"] = "reference"
    try:
        reference = snapshot(run("scalar"))
    finally:
        del os.environ["REPRO_ENGINE"]
    batch = snapshot(run("batch"))
    return fast, reference, batch


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=4, max_value=24),
    adversary=st.sampled_from(ADAPTIVE_ADVERSARIES),
)
def test_lcr_adaptive_three_way_parity(seed, n, adversary):
    def run(api):
        return lcr_ring(
            max(n, 3), RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run)
    assert fast == reference
    assert fast == batch


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=4, max_value=32),
    adversary=st.sampled_from(ADAPTIVE_ADVERSARIES),
)
def test_kpp_adaptive_three_way_parity(seed, n, adversary):
    def run(api):
        return classical_le_complete(
            n, RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run)
    assert fast == reference
    assert fast == batch


CPR_FAMILIES = {
    "complete": graphs.complete,
    "star": graphs.star,
    "wheel": graphs.wheel,
}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    family=st.sampled_from(sorted(CPR_FAMILIES)),
    n=st.integers(min_value=4, max_value=16),
    adversary=st.sampled_from(ADAPTIVE_ADVERSARIES),
)
def test_cpr_adaptive_three_way_parity(seed, family, n, adversary):
    topology = CPR_FAMILIES[family](n)

    def run(api):
        return classical_le_diameter2(
            topology, RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run)
    assert fast == reference
    assert fast == batch


@pytest.mark.parametrize(
    "scenario_name",
    [
        "wheel-le-adaptive/classical",
        "ring-le-congestion/lcr",
        "complete-le-eavesdrop/classical",
    ],
)
def test_adaptive_scenarios_identical_across_jobs(scenario_name):
    """The parallel trial runner preserves adaptive determinism: jobs=1 and
    jobs=4 produce identical aggregates, eavesdrop extras included."""
    scenario = get_scenario(scenario_name).with_overrides(sizes=(16,), trials=3)
    serial = run_scenario(scenario, jobs=1)
    parallel = run_scenario(scenario, jobs=4)
    assert serial.trial_sets == parallel.trial_sets
    extra = serial.trial_sets[0].extra
    assert "fault_rounds_to_recovery" in extra
