"""Property-based tests for topology invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import graphs
from repro.network.topology import (
    CompleteBipartiteTopology,
    CompleteTopology,
    HypercubeTopology,
    StarTopology,
    diameter,
    is_connected,
)


class TestHandshakeLemma:
    """Σ deg(v) = 2m on every family."""

    @given(st.integers(min_value=2, max_value=60))
    def test_complete(self, n):
        t = CompleteTopology(n)
        assert sum(t.degree(v) for v in t.nodes()) == 2 * t.edge_count()

    @given(st.integers(min_value=2, max_value=60))
    def test_star(self, n):
        t = StarTopology(n)
        assert sum(t.degree(v) for v in t.nodes()) == 2 * t.edge_count()

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=2, max_value=12))
    def test_bipartite(self, a, b):
        t = CompleteBipartiteTopology(a, b)
        assert sum(t.degree(v) for v in t.nodes()) == 2 * t.edge_count()

    @given(st.integers(min_value=1, max_value=9))
    def test_hypercube(self, d):
        t = HypercubeTopology(d)
        assert sum(t.degree(v) for v in t.nodes()) == 2 * t.edge_count()


class TestPortBijection:
    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=30)
    def test_complete_ports_bijective(self, n):
        t = CompleteTopology(n)
        for v in range(min(n, 5)):
            seen = {t.neighbor_at_port(v, p) for p in range(t.degree(v))}
            assert len(seen) == t.degree(v)
            assert v not in seen

    @given(st.integers(min_value=1, max_value=8))
    def test_hypercube_ports_bijective(self, d):
        t = HypercubeTopology(d)
        for v in (0, t.n - 1):
            seen = {t.neighbor_at_port(v, p) for p in range(d)}
            assert len(seen) == d

    @given(st.integers(min_value=3, max_value=50))
    @settings(max_examples=30)
    def test_symmetry_of_edges(self, n):
        """has_edge is symmetric on cycles."""
        t = graphs.cycle(n)
        for u, v in t.edges():
            assert t.has_edge(u, v) and t.has_edge(v, u)


class TestDiameterFamilies:
    @given(st.integers(min_value=5, max_value=40))
    @settings(max_examples=20)
    def test_wheel_diameter_two(self, n):
        assert diameter(graphs.wheel(n)) == 2

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=12))
    @settings(max_examples=20)
    def test_bipartite_diameter_two(self, a, b):
        assert diameter(CompleteBipartiteTopology(a, b)) == 2

    @given(st.integers(min_value=3, max_value=40))
    @settings(max_examples=20)
    def test_cycle_connected(self, n):
        assert is_connected(graphs.cycle(n))

    @given(st.integers(min_value=3, max_value=10), st.integers(min_value=3, max_value=10))
    @settings(max_examples=20)
    def test_torus_regular_degree_four(self, rows, cols):
        t = graphs.torus(rows, cols)
        assert all(t.degree(v) == 4 for v in t.nodes())
