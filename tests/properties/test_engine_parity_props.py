"""Property tests: CONGEST-violation detection parity between backends.

For any per-node port plan — duplicates or not — the fast and reference
backends must agree on whether the plan violates the one-message-per-port
CONGEST constraint, and on the delivered trace when it does not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.network import graphs
from repro.network.engine import CongestViolation, SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource


class _PlannedSender(Node):
    """Sends round 0 on a fixed port list (which may repeat ports)."""

    def __init__(self, uid, degree, rng, plan):
        super().__init__(uid, degree, rng)
        self.plan = plan
        self.received = []

    def step(self, round_index, inbox):
        self.received.extend(
            (round_index, port, message.sender) for port, message in inbox
        )
        if round_index == 0:
            return [(port, Message("m", payload=i)) for i, port in enumerate(self.plan)]
        self.halt()
        return []


def _run_plan(topology, plans, backend):
    rng = RandomSource(0)
    metrics = MetricsRecorder()
    nodes = [
        _PlannedSender(v, topology.degree(v), rng.spawn(), plans[v])
        for v in range(topology.n)
    ]
    engine = SynchronousEngine(topology, nodes, metrics, backend=backend)
    try:
        engine.run(max_rounds=3)
    except CongestViolation:
        return "violation"
    return (
        metrics.messages,
        metrics.rounds,
        engine.undelivered(),
        [node.received for node in nodes],
    )


@st.composite
def _port_plans(draw):
    """A small graph plus one (possibly duplicating) port plan per node."""
    kind = draw(st.sampled_from(["cycle", "complete", "star", "wheel"]))
    n = draw(st.integers(min_value=4, max_value=8))
    topology = {
        "cycle": graphs.cycle,
        "complete": graphs.complete,
        "star": graphs.star,
        "wheel": graphs.wheel,
    }[kind](n)
    plans = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=topology.degree(v) - 1),
                max_size=min(topology.degree(v) + 1, 5),
            )
        )
        for v in range(topology.n)
    ]
    return topology, plans


@settings(max_examples=60, deadline=None)
@given(case=_port_plans())
def test_congest_detection_parity(case):
    topology, plans = case
    fast = _run_plan(topology, plans, "fast")
    reference = _run_plan(topology, plans, "reference")
    has_duplicate = any(len(set(plan)) != len(plan) for plan in plans)
    if has_duplicate:
        assert fast == "violation"
        assert reference == "violation"
    else:
        assert fast != "violation"
        assert fast == reference


def test_duplicate_port_message_names_offender():
    topology = graphs.cycle(4)
    plans = [[1, 1]] + [[]] * 3
    rng = RandomSource(0)
    nodes = [
        _PlannedSender(v, 2, rng.spawn(), plans[v]) for v in range(4)
    ]
    engine = SynchronousEngine(topology, nodes, MetricsRecorder(), backend="fast")
    with pytest.raises(CongestViolation, match="node 0 .*port 1"):
        engine.run(max_rounds=2)
