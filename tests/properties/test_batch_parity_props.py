"""Property tests: batch dispatch is bit-identical to both scalar backends.

Two layers of parity, each with and without an adversary (drop + crash):

* **adapter parity** — any scalar protocol driven through
  :class:`~repro.network.batch.ScalarAdapter` on the batch path must
  reproduce the fast and reference backends' trials bit-for-bit, across
  ≥5 topology families;
* **native parity** — the six array-native ports (ring LCR,
  Hirschberg–Sinclair, ``complete_kpp``, the CPR diameter-2 baseline,
  the engine-driven AMP18 agreement, and the engine-driven Borůvka MST)
  must reproduce their scalar implementations bit-for-bit under
  identical seeds and adversary specs.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import AdversarySpec
from repro.classical.agreement.amp18_engine import classical_agreement_engine
from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.ring import hirschberg_sinclair_ring, lcr_ring
from repro.classical.mst_boruvka import boruvka_mst_engine
from repro.network import graphs
from repro.network.batch import ScalarAdapter
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource

#: The ≥5 topology families the adapter parity property sweeps.
FAMILIES = {
    "cycle": graphs.cycle,
    "complete": graphs.complete,
    "star": graphs.star,
    "wheel": graphs.wheel,
    "hypercube": lambda n: graphs.hypercube(max(2, (n - 1).bit_length())),
}

#: Fault mixes every parity property sweeps; delay exercises the batch
#: path's (sender, kind, value, bits) delayed-row repack + queue-order
#: reassembly, duplicate its np.repeat expansion.
ADVERSARIES = [
    None,
    AdversarySpec(drop_rate=0.15),
    AdversarySpec(crash_count=2, crash_by=3),
    AdversarySpec(drop_rate=0.1, crash_count=1, crash_by=2),
    AdversarySpec(delay_rate=0.2, delay_rounds=2),
    AdversarySpec(duplicate_rate=0.15),
    AdversarySpec(drop_rate=0.05, delay_rate=0.1, duplicate_rate=0.1),
]

#: KPP's referees reply once per arrival port, so a duplicated rank makes
#: the scalar protocol itself violate CONGEST (pre-existing) — its parity
#: sweep keeps drop/delay/crash only.
ADVERSARIES_NO_DUPLICATE = [
    spec
    for spec in ADVERSARIES
    if spec is None or spec.duplicate_rate == 0
]


class _GossipNode(Node):
    """Deterministic multi-round chatter: fan out on half the ports, halt
    after a per-node deadline; retains everything it heard."""

    def __init__(self, uid, degree, rng, deadline):
        super().__init__(uid, degree, rng)
        self.deadline = deadline
        self.received = []

    def step(self, round_index, inbox):
        self.received.extend(
            (round_index, port, m.sender, m.payload) for port, m in inbox
        )
        if round_index >= self.deadline:
            self.halt()
            return []
        return [
            (p, Message("g", payload=(self.uid * 31 + round_index + p)))
            for p in range(0, self.degree, 2)
        ]


def _run_gossip(topology, mode, adversary, backend="fast"):
    rng = RandomSource(11)
    armed = (
        adversary.arm(adversary.derive_rng(rng), topology.n)
        if adversary is not None
        else None
    )
    nodes = [
        _GossipNode(v, topology.degree(v), rng.spawn(), 3 + v % 3)
        for v in range(topology.n)
    ]
    metrics = MetricsRecorder()
    program = ScalarAdapter(nodes) if mode == "batch" else nodes
    engine = SynchronousEngine(
        topology, program, metrics, label="g", backend=backend, adversary=armed
    )
    rounds = engine.run(max_rounds=8)
    return (
        rounds,
        metrics.messages,
        metrics.rounds,
        engine.undelivered_detail(),
        engine.crashed_nodes,
        [node.received for node in nodes],
    )


@settings(max_examples=40, deadline=None)
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    n=st.integers(min_value=4, max_value=9),
    adversary=st.sampled_from(ADVERSARIES),
)
def test_adapter_parity_across_families(family, n, adversary):
    topology = FAMILIES[family](n)
    fast = _run_gossip(topology, "scalar", adversary, "fast")
    reference = _run_gossip(topology, "scalar", adversary, "reference")
    batch = _run_gossip(topology, "batch", adversary)
    assert fast == reference
    assert fast == batch


def _le_snapshot(result):
    return (
        result.messages,
        result.rounds,
        result.success,
        result.leader,
        dict(result.statuses),
        dict(result.meta),
        result.crashed,
    )


def _agreement_snapshot(result):
    return (
        result.messages,
        result.rounds,
        result.success,
        result.agreed_value,
        dict(result.decisions),
        dict(result.meta),
    )


def _three_way(run, snapshot):
    """(fast-scalar, reference-scalar, batch) snapshots of one trial."""
    fast = snapshot(run("scalar"))
    os.environ["REPRO_ENGINE"] = "reference"
    try:
        reference = snapshot(run("scalar"))
    finally:
        del os.environ["REPRO_ENGINE"]
    batch = snapshot(run("batch"))
    return fast, reference, batch


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=4, max_value=24),
    adversary=st.sampled_from(ADVERSARIES),
)
def test_lcr_batch_parity(seed, n, adversary):
    def run(api):
        return lcr_ring(
            max(n, 3), RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run, _le_snapshot)
    assert fast == reference
    assert fast == batch


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=4, max_value=32),
    adversary=st.sampled_from(ADVERSARIES_NO_DUPLICATE),
)
def test_kpp_batch_parity(seed, n, adversary):
    def run(api):
        return classical_le_complete(
            n, RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run, _le_snapshot)
    assert fast == reference
    assert fast == batch


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=4, max_value=24),
    adversary=st.sampled_from(ADVERSARIES),
)
def test_hs_batch_parity(seed, n, adversary):
    def run(api):
        return hirschberg_sinclair_ring(
            max(n, 3), RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run, _le_snapshot)
    assert fast == reference
    assert fast == batch


#: CPR needs diameter ≤ 2; its referees (like KPP's) reply once per arrival
#: port, so the duplicate adversary is excluded for the same reason.
CPR_FAMILIES = {
    "complete": graphs.complete,
    "star": graphs.star,
    "wheel": graphs.wheel,
}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    family=st.sampled_from(sorted(CPR_FAMILIES)),
    n=st.integers(min_value=4, max_value=16),
    adversary=st.sampled_from(ADVERSARIES_NO_DUPLICATE),
)
def test_cpr_batch_parity(seed, family, n, adversary):
    topology = CPR_FAMILIES[family](n)

    def run(api):
        return classical_le_diameter2(
            topology, RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run, _le_snapshot)
    assert fast == reference
    assert fast == batch


def _mst_snapshot(result):
    return (
        result.messages,
        result.rounds,
        tuple(result.edges),
        result.total_weight,
        dict(result.meta),
    )


BORUVKA_FAMILIES = {
    "cycle": graphs.cycle,
    "complete": graphs.complete,
    "wheel": graphs.wheel,
}


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    family=st.sampled_from(sorted(BORUVKA_FAMILIES)),
    n=st.integers(min_value=4, max_value=13),
    adversary=st.sampled_from(ADVERSARIES),
)
def test_boruvka_engine_batch_parity(seed, family, n, adversary):
    topology = BORUVKA_FAMILIES[family](n)
    weight_rng = RandomSource(seed ^ 0x5EED)
    weights = {}
    for u, v in topology.edges():
        a, b = (u, v) if u < v else (v, u)
        weights[(a, b)] = weight_rng.uniform()

    def run(api):
        return boruvka_mst_engine(
            topology,
            weights,
            RandomSource(seed),
            adversary=adversary,
            node_api=api,
        )

    fast, reference, batch = _three_way(run, _mst_snapshot)
    assert fast == reference
    assert fast == batch


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=6, max_value=28),
    ones=st.floats(min_value=0.0, max_value=1.0),
    adversary=st.sampled_from(ADVERSARIES),
)
def test_amp18_engine_batch_parity(seed, n, ones, adversary):
    inputs = [1] * int(ones * n) + [0] * (n - int(ones * n))

    def run(api):
        return classical_agreement_engine(
            list(inputs), RandomSource(seed), adversary=adversary, node_api=api
        )

    fast, reference, batch = _three_way(run, _agreement_snapshot)
    assert fast == reference
    assert fast == batch
