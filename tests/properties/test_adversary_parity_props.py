"""Property tests: fast/reference trace equivalence under adversaries.

The acceptance bar for the adversary subsystem: for any adversary spec —
rate-based drops/delays/duplicates, scheduled edge drops, crash-stop
schedules, and combinations — both engine backends must produce
bit-identical traces (delivered messages, metrics, undelivered split,
fault accounting) from the same seeds, across topology families, and
engine-driven protocol trials must be bit-identical end to end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import AdversarySpec
from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.ring import hirschberg_sinclair_ring, lcr_ring
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource

#: Well over the acceptance bar of three families.
FAMILIES = {
    "complete": graphs.complete,
    "cycle": graphs.cycle,
    "star": graphs.star,
    "wheel": graphs.wheel,
    "path": graphs.path,
}


class _Chatter(Node):
    """Multi-round all-port gossip: every fault class has targets."""

    def __init__(self, uid, degree, rng, rounds):
        super().__init__(uid, degree, rng)
        self.rounds = rounds
        self.received = []

    def step(self, round_index, inbox):
        self.received.extend(
            (round_index, port, m.sender, m.payload) for port, m in inbox
        )
        if round_index < self.rounds:
            return [
                (p, Message("g", payload=(self.uid, round_index, p)))
                for p in range(self.degree)
            ]
        self.halt()
        return []


def _trace(family, n, spec, seed, backend):
    topology = FAMILIES[family](n)
    rng = RandomSource(seed)
    armed = spec.arm(spec.derive_rng(rng), topology.n) if not spec.is_null else None
    nodes = [
        _Chatter(v, topology.degree(v), rng.spawn(), rounds=4)
        for v in range(topology.n)
    ]
    metrics = MetricsRecorder()
    engine = SynchronousEngine(
        topology, nodes, metrics, backend=backend, adversary=armed
    )
    engine.run(max_rounds=12)
    return (
        metrics.messages,
        metrics.rounds,
        engine.rounds_executed,
        engine.undelivered_detail(),
        engine.fault_stats(),
        [node.received for node in nodes],
    )


@st.composite
def _adversary_specs(draw):
    spec = AdversarySpec(
        drop_rate=draw(st.sampled_from([0.0, 0.1, 0.5, 1.0])),
        delay_rate=draw(st.sampled_from([0.0, 0.2, 0.7])),
        delay_rounds=draw(st.integers(min_value=1, max_value=3)),
        duplicate_rate=draw(st.sampled_from([0.0, 0.3, 1.0])),
        drop_schedule=tuple(
            draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=4),
                        st.integers(min_value=0, max_value=5),
                        st.integers(min_value=0, max_value=3),
                    ),
                    max_size=3,
                )
            )
        ),
        crashes=tuple(
            draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=5),
                        st.integers(min_value=0, max_value=4),
                    ),
                    max_size=2,
                )
            )
        ),
        crash_count=draw(st.integers(min_value=0, max_value=2)),
        crash_by=draw(st.integers(min_value=1, max_value=4)),
    )
    return spec


@settings(max_examples=60, deadline=None)
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    n=st.integers(min_value=4, max_value=9),
    spec=_adversary_specs(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_trace_equivalence_under_adversary(family, n, spec, seed):
    """Drop/delay/duplicate/crash traces match bit for bit across backends."""
    fast = _trace(family, n, spec, seed, "fast")
    reference = _trace(family, n, spec, seed, "reference")
    assert fast == reference


@settings(max_examples=20, deadline=None)
@given(
    drop=st.sampled_from([0.05, 0.3]),
    crash=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_protocol_trials_identical_across_backends(drop, crash, seed):
    """Full engine-driven protocol runs are bit-identical under faults.

    Covers four topology families end to end: K_n (KPP LE), cycles (LCR
    and Hirschberg–Sinclair), and stars/wheels (CPR diameter-2 LE) —
    statuses, crashed sets, messages, rounds, and the fault-accounting
    meta all must match.
    """
    spec = AdversarySpec(drop_rate=drop, crash_count=crash, crash_by=3)

    def summary(result):
        return (
            result.messages,
            result.rounds,
            result.success,
            result.leader,
            sorted(result.crashed),
            {v: s.value for v, s in result.statuses.items()},
            result.meta,
        )

    import os

    runs = {}
    for backend in ("fast", "reference"):
        os.environ["REPRO_ENGINE"] = backend
        try:
            runs[backend] = [
                summary(classical_le_complete(16, RandomSource(seed), adversary=spec)),
                summary(lcr_ring(8, RandomSource(seed), adversary=spec)),
                summary(
                    hirschberg_sinclair_ring(8, RandomSource(seed), adversary=spec)
                ),
                summary(
                    classical_le_diameter2(
                        graphs.star(12), RandomSource(seed), adversary=spec
                    )
                ),
                summary(
                    classical_le_diameter2(
                        graphs.wheel(12), RandomSource(seed), adversary=spec
                    )
                ),
            ]
        finally:
            os.environ.pop("REPRO_ENGINE", None)
    assert runs["fast"] == runs["reference"]
