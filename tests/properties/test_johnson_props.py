"""Property-based tests for Johnson graphs."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.johnson import JohnsonGraph
from repro.util.rng import RandomSource


@st.composite
def johnson_params(draw):
    n = draw(st.integers(min_value=3, max_value=60))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    return n, k


class TestJohnsonProperties:
    @given(johnson_params())
    @settings(max_examples=60)
    def test_degree_symmetry(self, params):
        """J(n,k) ≅ J(n,n−k): same degree and gap."""
        n, k = params
        a = JohnsonGraph(n, k)
        b = JohnsonGraph(n, n - k)
        assert a.degree == b.degree
        assert abs(a.spectral_gap() - b.spectral_gap()) < 1e-12

    @given(johnson_params())
    @settings(max_examples=60)
    def test_hitting_fraction_bounds_and_monotonicity(self, params):
        n, k = params
        j = JohnsonGraph(n, k)
        previous = 0.0
        for g in range(n + 1):
            fraction = j.hitting_fraction(g)
            assert -1e-12 <= fraction <= 1.0 + 1e-12
            assert fraction >= previous - 1e-12
            previous = fraction

    @given(johnson_params())
    @settings(max_examples=60)
    def test_single_good_exactly_k_over_n(self, params):
        n, k = params
        assert JohnsonGraph(n, k).hitting_fraction(1) == round(k / n, 12) or (
            abs(JohnsonGraph(n, k).hitting_fraction(1) - k / n) < 1e-9
        )

    @given(johnson_params(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40)
    def test_random_walk_step_stays_valid(self, params, seed):
        n, k = params
        j = JohnsonGraph(n, k)
        rng = RandomSource(seed)
        vertex = j.random_vertex(rng)
        for _ in range(5):
            vertex, removed, added = j.random_neighbor(vertex, rng)
            assert len(vertex) == k
            assert added in vertex and removed not in vertex

    @given(johnson_params())
    @settings(max_examples=40)
    def test_hitting_matches_binomial_identity(self, params):
        n, k = params
        j = JohnsonGraph(n, k)
        for g in range(0, n + 1, max(1, n // 5)):
            if n - g >= k:
                expected = 1.0 - math.comb(n - g, k) / math.comb(n, k)
            else:
                expected = 1.0
            assert abs(j.hitting_fraction(g) - expected) < 1e-9
