"""Property-based tests for the rotation algebra (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.amplitude import (
    attempts_for_confidence,
    bbht_average_success,
    grover_angle,
    grover_success_probability,
    worst_case_iterations,
)

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_fractions = st.floats(
    min_value=1e-6, max_value=1.0, allow_nan=False, exclude_min=False
)
iterations = st.integers(min_value=0, max_value=10_000)


class TestGroverLawProperties:
    @given(fractions, iterations)
    def test_probability_in_unit_interval(self, eps, j):
        assert 0.0 <= grover_success_probability(j, eps) <= 1.0 + 1e-12

    @given(fractions)
    def test_zero_iterations_identity(self, eps):
        assert grover_success_probability(0, eps) == math.sin(grover_angle(eps)) ** 2

    @given(positive_fractions, iterations)
    def test_rotation_periodicity(self, eps, j):
        """The law is periodic in j with period π/θ (up to float error)."""
        theta = grover_angle(eps)
        if theta < 1e-4:
            return  # period too long to test meaningfully
        period = math.pi / theta
        j2 = j + round(period)
        p1 = grover_success_probability(j, eps)
        p2 = grover_success_probability(j2, eps)
        # round(period) introduces phase error ≤ |round-period|·2θ
        drift = abs(round(period) - period) * 2 * theta
        assert abs(p1 - p2) <= 2 * drift + 1e-6

    @given(st.floats(min_value=1e-6, max_value=0.999))
    def test_bbht_floor_under_promise(self, eps):
        """Average success ≥ 1/4 at the worst-case cap, for every ε."""
        m = worst_case_iterations(eps)
        assert bbht_average_success(m, eps) >= 0.25 - 1e-9

    @given(
        st.floats(min_value=1e-6, max_value=1.0),
        st.integers(min_value=1, max_value=500),
    )
    def test_bbht_average_is_true_mean(self, eps, m):
        direct = sum(grover_success_probability(j, eps) for j in range(m)) / m
        # Near ε = 1 the closed form divides by sin(2θ) ≈ 0; allow float slack.
        assert abs(bbht_average_success(m, eps) - direct) < 1e-6

    @given(st.floats(min_value=1e-9, max_value=0.5))
    def test_attempts_guarantee_alpha(self, alpha):
        attempts = attempts_for_confidence(alpha)
        assert (0.75) ** attempts <= alpha * (1 + 1e-9)

    @settings(max_examples=30)
    @given(st.floats(min_value=1e-6, max_value=1.0))
    def test_worst_case_iterations_bounds(self, eps):
        m = worst_case_iterations(eps)
        assert m >= 1
        assert m - 1 < 1.0 / math.sqrt(eps) <= m or m == 1
