"""Property-based tests for CONGEST accounting and the cost ledger."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.message import congest_capacity_bits, messages_for_bits
from repro.util.ledger import CostLedger


class TestCongestSplitting:
    @given(
        st.integers(min_value=0, max_value=10**7),
        st.integers(min_value=2, max_value=10**6),
    )
    @settings(max_examples=100)
    def test_splitting_is_tight(self, bits, n):
        """k messages carry enough capacity, k−1 do not."""
        k = messages_for_bits(bits, n)
        capacity = congest_capacity_bits(n)
        assert k * capacity >= bits
        if k > 0:
            assert (k - 1) * capacity < bits

    @given(
        st.integers(min_value=0, max_value=10**5),
        st.integers(min_value=0, max_value=10**5),
        st.integers(min_value=2, max_value=10**4),
    )
    @settings(max_examples=100)
    def test_subadditivity(self, bits_a, bits_b, n):
        """Splitting two payloads separately never beats concatenating."""
        together = messages_for_bits(bits_a + bits_b, n)
        apart = messages_for_bits(bits_a, n) + messages_for_bits(bits_b, n)
        assert together <= apart

    @given(st.integers(min_value=1, max_value=10**6))
    def test_monotone_in_bits(self, bits):
        assert messages_for_bits(bits, 64) >= messages_for_bits(bits - 1, 64)


class TestLedgerConservation:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_totals_equal_sum_of_entries(self, charges):
        ledger = CostLedger()
        for label, messages, rounds in charges:
            ledger.charge(label, messages=messages, rounds=rounds)
        assert ledger.total_messages == sum(c[1] for c in charges)
        assert ledger.total_rounds == sum(c[2] for c in charges)
        assert sum(ledger.messages_by_label().values()) == ledger.total_messages

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x.1", "x.2", "y.1"]),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_prefix_grouping_conserves_totals(self, charges):
        ledger = CostLedger()
        for label, messages in charges:
            ledger.charge(label, messages=messages)
        assert sum(ledger.messages_by_prefix().values()) == ledger.total_messages
