"""Property-based tests for the dense state-vector simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import state_preparation
from repro.quantum.statevector import DenseState
from repro.util.rng import RandomSource


@st.composite
def small_dims(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    return [draw(st.integers(min_value=2, max_value=4)) for _ in range(count)]


def _random_unitary(dim, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(matrix)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


class TestUnitarity:
    @given(small_dims(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60)
    def test_norm_preserved_by_random_unitaries(self, dims, seed):
        state = DenseState(dims)
        for target, dim in enumerate(dims):
            state.apply(_random_unitary(dim, seed + target), [target])
        assert abs(state.norm() - 1.0) < 1e-9

    @given(small_dims())
    @settings(max_examples=40)
    def test_probabilities_sum_to_one(self, dims):
        state = DenseState(dims)
        for target, dim in enumerate(dims):
            state.apply(_random_unitary(dim, target), [target])
        assert abs(state.probabilities().sum() - 1.0) < 1e-9

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60)
    def test_state_preparation_unitary_for_random_targets(self, dim, seed):
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        vector = vector / np.linalg.norm(vector)
        gate = state_preparation(vector)
        assert np.allclose(gate @ gate.conj().T, np.eye(dim), atol=1e-9)
        assert np.allclose(gate[:, 0], vector, atol=1e-9)


class TestMeasurementProperties:
    @given(small_dims(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40)
    def test_measurement_collapses_and_repeats(self, dims, seed):
        state = DenseState(dims)
        for target, dim in enumerate(dims):
            state.apply(_random_unitary(dim, 7 * target + 1), [target])
        rng = RandomSource(seed)
        outcome = state.measure(0, rng)
        again = state.measure(0, rng)
        assert outcome == again  # projective measurement is repeatable
        assert abs(state.norm() - 1.0) < 1e-9
