"""Property-based tests for the phase-estimation outcome law."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.phase_estimation import (
    counting_estimate_from_outcome,
    eigenphase_turns,
    qpe_distribution,
)

phases = st.floats(min_value=0.0, max_value=0.9999, allow_nan=False)
sizes = st.integers(min_value=1, max_value=512)


class TestQPEDistributionProperties:
    @given(phases, sizes)
    @settings(max_examples=60)
    def test_normalized_probability_vector(self, omega, P):
        distribution = qpe_distribution(omega, P)
        assert np.all(distribution >= -1e-12)
        assert distribution.sum() == np.float64(1.0) or abs(
            distribution.sum() - 1.0
        ) < 1e-9

    @given(sizes, st.integers(min_value=0, max_value=511))
    @settings(max_examples=60)
    def test_exact_grid_phase_deterministic(self, P, y_raw):
        y = y_raw % P
        distribution = qpe_distribution(y / P, P)
        assert distribution[y] > 1.0 - 1e-9

    @given(phases, st.integers(min_value=4, max_value=256))
    @settings(max_examples=60)
    def test_majority_mass_within_one_bin(self, omega, P):
        """Phase estimation puts ≥ 8/π² of the mass on the two bracketing
        outcomes — the standard QPE guarantee."""
        distribution = qpe_distribution(omega, P)
        lo = int(np.floor(omega * P)) % P
        hi = (lo + 1) % P
        assert distribution[lo] + distribution[hi] >= 8 / np.pi**2 - 1e-9


class TestCountingDecoder:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=60)
    def test_eigenphase_in_first_half_turn(self, t_raw, N):
        t = t_raw % (N + 1)
        omega = eigenphase_turns(t, N)
        assert 0.0 <= omega <= 0.5

    @given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=60)
    def test_estimate_range(self, P, N):
        for y in range(0, P, max(1, P // 7)):
            estimate = counting_estimate_from_outcome(y, N, P)
            assert -1e-9 <= estimate <= N + 1e-9

    @given(st.integers(min_value=2, max_value=128))
    @settings(max_examples=40)
    def test_estimate_symmetric_in_y(self, P):
        """t̃(y) = t̃(P − y): conjugate eigenphases decode identically."""
        N = 1000
        for y in range(1, P):
            a = counting_estimate_from_outcome(y, N, P)
            b = counting_estimate_from_outcome(P - y, N, P)
            assert abs(a - b) < 1e-6
