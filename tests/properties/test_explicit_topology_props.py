"""Property-based tests for ExplicitTopology on random edge sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.spanning import bfs_tree
from repro.network.topology import ExplicitTopology, bfs_distances, is_connected


@st.composite
def random_graph(draw):
    """A random simple graph, connected by construction via a spanning path."""
    n = draw(st.integers(min_value=2, max_value=30))
    base = [(i, i + 1) for i in range(n - 1)]  # spanning path
    extra_count = draw(st.integers(min_value=0, max_value=3 * n))
    extras = [
        (draw(st.integers(min_value=0, max_value=n - 1)),
         draw(st.integers(min_value=0, max_value=n - 1)))
        for _ in range(extra_count)
    ]
    edges = base + [(u, v) for u, v in extras if u != v]
    return ExplicitTopology(n, edges)


class TestExplicitTopologyProperties:
    @given(random_graph())
    @settings(max_examples=50)
    def test_handshake_lemma(self, topology):
        assert sum(topology.degree(v) for v in topology.nodes()) == (
            2 * topology.edge_count()
        )

    @given(random_graph())
    @settings(max_examples=50)
    def test_port_maps_are_bijections(self, topology):
        for v in topology.nodes():
            neighbours = [
                topology.neighbor_at_port(v, p) for p in range(topology.degree(v))
            ]
            assert len(set(neighbours)) == len(neighbours)
            for port, u in enumerate(neighbours):
                assert topology.port_to(v, u) == port

    @given(random_graph())
    @settings(max_examples=50)
    def test_edge_symmetry(self, topology):
        for u, v in topology.edges():
            assert topology.has_edge(u, v)
            assert topology.has_edge(v, u)
            assert u in set(topology.neighbors(v))

    @given(random_graph())
    @settings(max_examples=40)
    def test_connected_and_bfs_tree_spans(self, topology):
        assert is_connected(topology)
        tree = bfs_tree(topology, 0)
        assert tree.size == topology.n
        distances = bfs_distances(topology, 0)
        for v in topology.nodes():
            assert tree.depth[v] == distances[v]

    @given(random_graph(), st.integers(min_value=0, max_value=29))
    @settings(max_examples=40)
    def test_triangle_inequality_of_bfs(self, topology, source_raw):
        source = source_raw % topology.n
        distances = bfs_distances(topology, source)
        for u, v in topology.edges():
            assert abs(distances[u] - distances[v]) <= 1
