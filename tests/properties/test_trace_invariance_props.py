"""Property tests: telemetry observes, it never participates.

For any engine-driven scenario configuration — fault-free or
adversarial, on either engine backend and either node API — running
with tracing and/or profiling enabled must leave every result artifact
bit-identical to the bare run: the ``TrialSet`` aggregates, the
content-addressed store keys (format v4), and the stored bytes.
Telemetry draws from wall clocks only, never from a run RNG stream.
"""

import contextlib
import dataclasses
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import ResultStore, Scenario, TopologySpec, run_scenario
from repro.telemetry import reset_metrics, reset_telemetry, set_profiling, set_trace_path

#: (protocol, topology family, adversary spec text or None).  lcr is
#: batch-capable so node_api picks the dispatch path; hs is scalar-only.
CONFIGS = [
    ("le-ring/lcr", "cycle", None),
    ("le-ring/lcr", "cycle", "drop=0.05,seed=7"),
    ("le-ring/hs", "cycle", "crash=1@2,seed=3"),
    ("search-star/classical", "star", None),
]


@contextlib.contextmanager
def _clean_env(**overrides):
    """Scoped env manipulation usable inside ``@given`` bodies (Hypothesis
    forbids function-scoped fixtures, which do not reset between examples)."""
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_TRACE", "REPRO_PROFILE", "REPRO_ENGINE", *overrides)
    }
    for key in ("REPRO_TRACE", "REPRO_PROFILE"):
        os.environ.pop(key, None)
    for key, value in overrides.items():
        os.environ[key] = value
    reset_telemetry()
    reset_metrics()
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        reset_telemetry()
        reset_metrics()


def _scenario(config_index, seed, engine, node_api) -> Scenario:
    from repro.adversary import AdversarySpec

    protocol, family, spec_text = CONFIGS[config_index]
    return Scenario(
        name=f"trace-prop/{config_index}",
        protocol=protocol,
        topology=TopologySpec(family),
        sizes=(8, 12),
        trials=2,
        seed=seed,
        adversary=None if spec_text is None else AdversarySpec.parse(spec_text),
        node_api=node_api,
    )


def _artifacts(scenario, engine, traced, profiled):
    """(aggregates, {store key: bytes}) for one configuration."""
    with tempfile.TemporaryDirectory() as root:
        if traced:
            set_trace_path(f"{root}/trace.jsonl")
        if profiled:
            set_profiling(True)
        try:
            store = ResultStore(f"{root}/cache")
            run = run_scenario(scenario, jobs=1, store=store)
            files = {
                path.name: path.read_bytes()
                for path in store.root.glob("*.json")
            }
        finally:
            set_trace_path(None)
            set_profiling(False)
            reset_telemetry()
        trial_sets = tuple(
            dataclasses.asdict(trial_set) for trial_set in run.trial_sets
        )
        return trial_sets, files


class TestTelemetryInvariance:
    @given(
        config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
        seed=st.integers(min_value=0, max_value=2**16),
        engine=st.sampled_from(["fast", "reference"]),
        node_api=st.sampled_from(["auto", "scalar"]),
        traced=st.booleans(),
        profiled=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_traced_run_is_bit_identical(
        self, config_index, seed, engine, node_api, traced, profiled
    ):
        with _clean_env(REPRO_ENGINE=engine):
            scenario = _scenario(config_index, seed, engine, node_api)
            bare = _artifacts(scenario, engine, traced=False, profiled=False)
            telemetered = _artifacts(
                scenario, engine, traced=traced, profiled=profiled
            )
        assert telemetered[0] == bare[0]  # aggregates, field for field
        assert telemetered[1].keys() == bare[1].keys()  # v4 store keys
        assert telemetered[1] == bare[1]  # stored bytes

    def test_profile_meta_attaches_without_touching_aggregates(self):
        with _clean_env(REPRO_ENGINE="fast"):
            scenario = _scenario(1, seed=5, engine="fast", node_api="auto")
            bare = _artifacts(scenario, "fast", traced=False, profiled=False)
            set_profiling(True)
            try:
                with tempfile.TemporaryDirectory() as root:
                    run = run_scenario(
                        scenario, jobs=1, store=ResultStore(f"{root}/cache")
                    )
            finally:
                set_profiling(False)
                reset_telemetry()
        assert "profile" in run.meta
        assert run.meta["profile"]  # phases recorded
        observed = tuple(
            dataclasses.asdict(trial_set) for trial_set in run.trial_sets
        )
        assert observed == bare[0]
