"""Shared fixtures for the serve test suite.

The suite drives :class:`~repro.serve.app.ServeApp` both directly
(route handlers are plain methods) and over a real
``ThreadingHTTPServer`` bound to port 0 on loopback, with a tiny
urllib client.  Scenarios reuse the fabric suite's cheap star-search
shape — sub-millisecond trials, so real fabric fleets and real HTTP
round trips stay fast.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runtime import Scenario, TopologySpec
from repro.runtime.store import ResultStore
from repro.serve import ServeApp, build_server
from repro.telemetry import reset_metrics


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Never let a serve test touch the repo's real result cache."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "default-cache"))


@pytest.fixture(autouse=True)
def _clean_registry():
    """Serve tests assert on counters; start and end from zero."""
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture
def make_scenario():
    """Factory for cheap, deterministic serve scenarios."""

    def factory(**overrides) -> Scenario:
        base = dict(
            name="serve-test/star",
            protocol="search-star/classical",
            topology=TopologySpec("star"),
            sizes=(8, 12, 16),
            trials=2,
            seed=11,
        )
        base.update(overrides)
        return Scenario(**base)

    return factory


@pytest.fixture
def serve_app(tmp_path):
    """A ServeApp over an isolated store and fabric root (no HTTP)."""
    store = ResultStore(tmp_path / "store", memory_entries=64)
    app = ServeApp(
        fabric_root=tmp_path / "fabric",
        store=store,
        workers=2,
        max_jobs=2,
        lease_ttl=10.0,
        poll=0.02,
        stream_interval=0.05,
    )
    yield app
    app.jobs.drain()


class Client:
    """Minimal JSON-over-HTTP client; error responses return, not raise."""

    def __init__(self, base: str):
        self.base = base

    def _request(self, req) -> tuple[int, dict]:
        try:
            with urllib.request.urlopen(req, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path: str) -> tuple[int, dict]:
        return self._request(self.base + path)

    def get_text(self, path: str) -> tuple[int, str]:
        with urllib.request.urlopen(self.base + path, timeout=60) as response:
            return response.status, response.read().decode()

    def post(self, path: str, payload: dict) -> tuple[int, dict]:
        req = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(req)

    def stream_lines(self, path: str, limit: int = 200) -> list[dict]:
        """Read SSE ``data:`` lines until the server closes (or limit)."""
        events = []
        with urllib.request.urlopen(self.base + path, timeout=120) as response:
            for raw in response:
                line = raw.decode().strip()
                if line.startswith("data: "):
                    events.append(json.loads(line[len("data: "):]))
                    if len(events) >= limit:
                        break
        return events


@pytest.fixture
def client(serve_app):
    """The app served for real on a loopback port, plus a JSON client."""
    server = build_server(serve_app, "127.0.0.1", 0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address[:2]
    yield Client(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
