"""CLI surface of the serve PR: ``repro metrics`` and catalogue parity."""

from __future__ import annotations

import json

from repro.cli import main


class TestMetricsCommand:
    def test_requires_exactly_one_source(self, capsys):
        assert main(["metrics"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            ["metrics", "--scenario", "ring-le/lcr", "--fabric", "/tmp/x"]
        ) == 2

    def test_scenario_json_dump(self, capsys):
        assert main(
            ["metrics", "--scenario", "ring-le/lcr", "--sizes", "8",
             "--trials", "1", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics["repro_engine_runs_total"]["value"] >= 1
        assert metrics["repro_trial_seconds"]["kind"] == "histogram"

    def test_scenario_prometheus_dump(self, capsys):
        assert main(
            ["metrics", "--scenario", "ring-le/lcr", "--sizes", "8",
             "--trials", "1"]
        ) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_engine_runs_total counter" in text
        assert "repro_trial_seconds_bucket" in text

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["metrics", "--scenario", "no-such/thing"]) == 2
        assert "unknown scenario" in capsys.readouterr().err.lower()

    def test_fabric_job_dump(self, tmp_path, capsys):
        fabric = tmp_path / "fab"
        assert main(
            ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
             "--trials", "2", "--fabric", str(fabric), "--workers", "2",
             "--lease-ttl", "5", "--no-cache"]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", "--fabric", str(fabric)]) == 0
        text = capsys.readouterr().out
        assert "repro_fabric_shards_done 2" in text
        assert "repro_fabric_worker_trials_executed" in text

    def test_fabric_without_manifest_fails_cleanly(self, tmp_path, capsys):
        assert main(["metrics", "--fabric", str(tmp_path / "empty")]) == 2
        assert "no fabric job" in capsys.readouterr().err.lower()


class TestCataloguePayloadParity:
    def test_protocols_json_is_serve_payload(self, capsys):
        from repro.serve.api import protocols_payload

        assert main(["protocols", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(
            json.dumps(protocols_payload())
        )

    def test_scenarios_json_is_serve_payload(self, capsys):
        from repro.serve.api import scenarios_payload

        assert main(["scenarios", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(
            json.dumps(scenarios_payload())
        )
