"""The serve API over a real socket: routing, tiers, streaming, drain."""

from __future__ import annotations

import json

from repro.fabric.serialize import scenario_to_dict
from repro.runtime import run_scenario
from repro.serve.api import protocols_payload, scenarios_payload


class TestCatalogueEndpoints:
    def test_healthz(self, client):
        status, payload = client.get("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["jobs"]["total"] == 0

    def test_protocols_matches_cli_dump(self, client):
        status, payload = client.get("/v1/protocols")
        assert status == 200
        assert payload["protocols"] == json.loads(
            json.dumps(protocols_payload())
        )

    def test_scenarios_matches_cli_dump(self, client):
        status, payload = client.get("/v1/scenarios")
        assert status == 200
        assert payload["scenarios"] == json.loads(
            json.dumps(scenarios_payload())
        )

    def test_unknown_route_is_structured_404(self, client):
        status, payload = client.get("/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_unknown_job_is_structured_404(self, client):
        status, payload = client.get("/v1/runs/deadbeefdeadbeef")
        assert status == 404
        assert payload["error"]["code"] == "unknown_job"

    def test_bad_request_body_is_structured_400(self, client):
        status, payload = client.post("/v1/runs", {"overrides": {}})
        assert status == 400
        assert payload["error"]["code"] == "missing_scenario"


class TestRunFlow:
    def test_hot_request_answers_synchronously(
        self, client, serve_app, make_scenario
    ):
        scenario = make_scenario()
        run_scenario(scenario, jobs=1, store=serve_app.store)
        status, payload = client.post(
            "/v1/runs", {"scenario": scenario_to_dict(scenario)}
        )
        assert status == 200
        assert payload["tier"] == "store"
        assert payload["status"] == "done"
        assert payload["run"]["sizes"] == [8, 12, 16]
        status2, payload2 = client.post(
            "/v1/runs", {"scenario": scenario_to_dict(scenario)}
        )
        assert (status2, payload2["tier"]) == (200, "memory")

    def test_cold_request_completes_via_polling(
        self, client, make_scenario
    ):
        scenario = make_scenario(seed=31)
        status, payload = client.post(
            "/v1/runs", {"scenario": scenario_to_dict(scenario)}
        )
        assert status == 202
        assert payload["tier"] == "cold"
        location = payload["location"]

        import time

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, polled = client.get(location)
            assert status == 200
            if polled["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert polled["state"] == "done", polled.get("error")
        assert polled["tier"] == "computed"
        assert polled["progress"]["shards"]["done"] == 3
        assert len(polled["run"]["trial_sets"]) == 3

        # The job now shows up in the listing with fabric-side progress.
        status, listing = client.get("/v1/runs")
        assert status == 200
        assert [job["job"] for job in listing["jobs"]] == [payload["job"]]
        assert listing["fabric_jobs"][0]["progress"]["shards"]["done"] == 3

    def test_events_stream_ends_with_terminal_state(
        self, client, serve_app, make_scenario
    ):
        scenario = make_scenario(seed=47)
        status, payload = client.post(
            "/v1/runs", {"scenario": scenario_to_dict(scenario)}
        )
        assert status == 202
        events = client.stream_lines(f"/v1/runs/{payload['job']}/events")
        assert events  # at least one snapshot even if the job raced us
        assert events[-1]["state"] == "done"
        assert events[-1]["shards"]["done"] == 3

    def test_metrics_endpoint_exports_prometheus_text(self, client):
        client.get("/healthz")
        status, text = client.get_text("/metrics")
        assert status == 200
        assert "# TYPE repro_serve_requests_total counter" in text
        value = next(
            line.split()[1]
            for line in text.splitlines()
            if line.startswith("repro_serve_requests_total ")
        )
        assert float(value) >= 1


class TestDrain:
    def test_draining_rejects_cold_accepts_hot(
        self, client, serve_app, make_scenario
    ):
        hot = make_scenario()
        run_scenario(hot, jobs=1, store=serve_app.store)
        serve_app.draining = True
        try:
            status, payload = client.post(
                "/v1/runs", {"scenario": scenario_to_dict(hot)}
            )
            assert (status, payload["tier"]) == (200, "store")
            cold = make_scenario(seed=67)
            status, payload = client.post(
                "/v1/runs", {"scenario": scenario_to_dict(cold)}
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"
            status, payload = client.get("/healthz")
            assert payload["status"] == "draining"
        finally:
            serve_app.draining = False

    def test_sigterm_drains_server_and_finishes_jobs(
        self, tmp_path, make_scenario, monkeypatch
    ):
        """serve_forever + a real signal handler invocation: the accept
        loop stops, in-flight jobs finish, leases are gone."""
        import signal
        import threading
        import urllib.request

        from repro.runtime.store import ResultStore
        from repro.serve import ServeApp, serve_forever

        store = ResultStore(tmp_path / "store", memory_entries=16)
        app = ServeApp(
            fabric_root=tmp_path / "fabric",
            store=store,
            workers=1,
            max_jobs=1,
            lease_ttl=10.0,
            poll=0.02,
        )
        bound = {}
        ready = threading.Event()

        def on_ready(server) -> None:
            bound["server"] = server
            ready.set()

        # Signals can't target a non-main thread; run the server loop in
        # a thread with handlers off and call the drain path directly.
        thread = threading.Thread(
            target=serve_forever,
            args=(app, "127.0.0.1", 0),
            kwargs={"install_signals": False, "ready_callback": on_ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        server = bound["server"]
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

        scenario = make_scenario(seed=71)
        request = urllib.request.Request(
            f"{base}/v1/runs",
            data=json.dumps(
                {"scenario": scenario_to_dict(scenario)}
            ).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.loads(response.read())
        assert payload["tier"] == "cold"

        # What the SIGTERM handler does, minus the actual signal.
        app.draining = True
        threading.Thread(target=server.shutdown, daemon=True).start()
        thread.join(timeout=120)
        assert not thread.is_alive()

        job = app.jobs.get(payload["job"])
        assert job is not None and job.state == "done"
        job_dir = tmp_path / "fabric" / payload["job"]
        assert not list((job_dir / "leases").glob("p*.json"))
        assert signal.getsignal(signal.SIGTERM) is not None
