"""Single-flight dedup and fabric-backed bit-identity (the acceptance
criteria): 8 concurrent identical cold requests → exactly one fabric
job, and the computed run is bit-identical to ``run_scenario(jobs=1)``
down to the v4 store bytes.
"""

from __future__ import annotations

import json
import threading

from repro.fabric.serialize import scenario_to_dict
from repro.runtime import run_scenario
from repro.runtime.store import ResultStore
from repro.telemetry import metrics_registry


def _counter(name: str) -> float:
    metric = metrics_registry().get(name)
    return 0 if metric is None else metric.value


def _submit_body(scenario) -> bytes:
    return json.dumps({"scenario": scenario_to_dict(scenario)}).encode()


class TestSingleFlight:
    def test_eight_concurrent_identical_colds_one_fabric_job(
        self, serve_app, make_scenario
    ):
        scenario = make_scenario()
        body = _submit_body(scenario)
        results: list = [None] * 8
        barrier = threading.Barrier(8)

        def request(index: int) -> None:
            barrier.wait()
            results[index] = serve_app.submit_run(body)

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        statuses = [status for status, _ in results]
        payloads = [payload for _, payload in results]
        assert statuses == [202] * 8
        job_ids = {payload["job"] for payload in payloads}
        assert len(job_ids) == 1  # everyone attached to the same job
        assert sum(1 for payload in payloads if payload["created"]) == 1
        assert _counter("repro_serve_singleflight_attached_total") == 7
        assert _counter("repro_serve_jobs_total") == 1

        job = serve_app.jobs.get(job_ids.pop())
        assert serve_app.jobs.wait(job, timeout=120)
        assert job.state == "done"
        assert job.attached == 7
        # Exactly one fabric job directory came into existence.
        job_dirs = [
            p for p in serve_app.jobs.fabric_root.iterdir() if p.is_dir()
        ]
        assert len(job_dirs) == 1

    def test_sequential_resubmit_after_done_hits_store_tier(
        self, serve_app, make_scenario
    ):
        scenario = make_scenario(seed=23)
        body = _submit_body(scenario)
        status, payload = serve_app.submit_run(body)
        assert status == 202
        job = serve_app.jobs.get(payload["job"])
        assert serve_app.jobs.wait(job, timeout=120)
        assert job.state == "done"

        # The identical request is now hot: first from the store tier
        # (the completed job does not pre-warm the run LRU), then from
        # memory — and no new fabric job is created either time.
        status2, payload2 = serve_app.submit_run(body)
        assert (status2, payload2["tier"]) == (200, "store")
        status3, payload3 = serve_app.submit_run(body)
        assert (status3, payload3["tier"]) == (200, "memory")
        assert _counter("repro_serve_jobs_total") == 1
        assert payload2["run"]["trial_sets"] == payload3["run"]["trial_sets"]


class TestBitIdentity:
    def test_fabric_backed_run_matches_serial_aggregates_and_bytes(
        self, serve_app, make_scenario, tmp_path
    ):
        scenario = make_scenario(seed=7)
        status, payload = serve_app.submit_run(_submit_body(scenario))
        assert status == 202
        job = serve_app.jobs.get(payload["job"])
        assert serve_app.jobs.wait(job, timeout=120)
        assert job.state == "done", job.error

        reference_store = ResultStore(tmp_path / "reference-store")
        reference = run_scenario(scenario, jobs=1, store=reference_store)

        assert job.run.trial_sets == reference.trial_sets
        # v4 store bytes: same file names, identical contents.
        for position, n in enumerate(scenario.sizes):
            served = serve_app.store.path_for(scenario, n, position)
            expected = reference_store.path_for(scenario, n, position)
            assert served.name == expected.name
            assert served.read_bytes() == expected.read_bytes()

    def test_failed_job_reports_structured_error(self, serve_app):
        # a torus needs a square n: n=7 raises inside every worker, the
        # supervisor exhausts its respawn budget, the job fails cleanly.
        from repro.runtime import Scenario, TopologySpec

        scenario = Scenario(
            name="serve-test/bad-torus",
            protocol="le-mixing/classical",
            topology=TopologySpec("torus"),
            sizes=(7,),
            trials=1,
            seed=3,
        )
        status, payload = serve_app.submit_run(
            json.dumps({"scenario": scenario_to_dict(scenario)}).encode()
        )
        assert status == 202
        job = serve_app.jobs.get(payload["job"])
        assert serve_app.jobs.wait(job, timeout=120)
        assert job.state == "failed"
        assert job.error
        assert _counter("repro_serve_jobs_failed_total") == 1
