"""Request validation and payload shapes (HTTP-free)."""

from __future__ import annotations

import json

import pytest

from repro.fabric.serialize import scenario_to_dict
from repro.runtime import SCENARIOS, get_scenario
from repro.serve.api import (
    ApiError,
    parse_run_request,
    protocols_payload,
    run_payload,
    scenario_entry,
    scenarios_payload,
)


def _body(payload: dict) -> bytes:
    return json.dumps(payload).encode()


class TestParseRunRequest:
    def test_catalogue_name_resolves(self):
        scenario = parse_run_request(_body({"scenario": "ring-le/lcr"}))
        assert scenario == get_scenario("ring-le/lcr")

    def test_serialized_scenario_round_trips(self, make_scenario):
        original = make_scenario()
        scenario = parse_run_request(
            _body({"scenario": scenario_to_dict(original)})
        )
        assert scenario == original

    def test_overrides_apply(self):
        scenario = parse_run_request(
            _body(
                {
                    "scenario": "ring-le/lcr",
                    "overrides": {"sizes": [8, 16], "trials": 1, "seed": 42},
                }
            )
        )
        assert scenario.sizes == (8, 16)
        assert scenario.trials == 1
        assert scenario.seed == 42

    def test_adversary_override_parses_spec_string(self):
        scenario = parse_run_request(
            _body(
                {
                    "scenario": "ring-le/lcr",
                    "overrides": {"adversary": "drop=0.05"},
                }
            )
        )
        assert scenario.adversary is not None
        assert scenario.adversary.drop_rate == pytest.approx(0.05)

    def test_adversary_null_strips_catalogue_faults(self):
        faulty = next(
            name
            for name, scenario in sorted(SCENARIOS.items())
            if scenario.adversary is not None
        )
        scenario = parse_run_request(
            _body({"scenario": faulty, "overrides": {"adversary": None}})
        )
        assert scenario.adversary is None

    @pytest.mark.parametrize(
        "body,code",
        [
            (b"{not json", "bad_json"),
            (_body(["a", "list"]), "bad_request"),
            (_body({}), "missing_scenario"),
            (_body({"scenario": 7}), "bad_request"),
            (_body({"scenario": "no-such-scenario"}), "unknown_scenario"),
            (_body({"scenario": {"name": "x"}}), "bad_scenario"),
            (
                _body({"scenario": "ring-le/lcr", "overrides": ["x"]}),
                "bad_overrides",
            ),
            (
                _body(
                    {"scenario": "ring-le/lcr", "overrides": {"bogus": 1}}
                ),
                "bad_overrides",
            ),
            (
                _body(
                    {"scenario": "ring-le/lcr", "overrides": {"sizes": []}}
                ),
                "bad_overrides",
            ),
            (
                _body(
                    {
                        "scenario": "ring-le/lcr",
                        "overrides": {"adversary": "drop=2.0"},
                    }
                ),
                "bad_adversary",
            ),
        ],
    )
    def test_structured_rejections(self, body, code):
        with pytest.raises(ApiError) as error:
            parse_run_request(body)
        assert error.value.code == code
        assert error.value.status == 400
        assert error.value.payload()["error"]["code"] == code

    def test_unsupported_adversary_combo_rejected(self):
        # search-star/classical carries no capability tags: a drop
        # adversary needs 'faults' and must be refused up front.
        with pytest.raises(ApiError) as error:
            parse_run_request(
                _body(
                    {
                        "scenario": "star-search/classical",
                        "overrides": {"adversary": "drop=0.1"},
                    }
                )
            )
        assert error.value.code == "unsupported_adversary"

    def test_unsupported_node_api_rejected(self):
        with pytest.raises(ApiError) as error:
            parse_run_request(
                _body(
                    {
                        "scenario": "star-search/classical",
                        "overrides": {"node_api": "batch"},
                    }
                )
            )
        assert error.value.code == "unsupported_node_api"


class TestCataloguePayloads:
    def test_scenarios_payload_matches_catalogue(self):
        payload = scenarios_payload()
        assert [entry["name"] for entry in payload] == sorted(SCENARIOS)
        for entry in payload:
            assert entry == scenario_entry(SCENARIOS[entry["name"]])
            json.dumps(entry)  # every entry must be JSON-clean

    def test_protocols_payload_has_capability_tags(self):
        payload = protocols_payload()
        by_name = {entry["name"]: entry for entry in payload}
        assert "faults" in by_name["le-ring/lcr"]["supports"]
        for entry in payload:
            assert {"name", "supports", "kernel"} <= set(entry)
            json.dumps(entry)


class TestRunPayload:
    def test_round_aggregates_survive(self, make_scenario, tmp_path):
        from repro.runtime import run_scenario

        run = run_scenario(make_scenario(), jobs=1, store=None)
        payload = run_payload(run)
        assert payload["sizes"] == [8, 12, 16]
        assert len(payload["trial_sets"]) == 3
        assert payload["trial_sets"][0]["n"] == 8
        json.dumps(payload, default=str)
