"""RunCache tier behavior: memory promotion, store assembly, LRU cap."""

from __future__ import annotations

from repro.runtime import run_scenario
from repro.runtime.store import ResultStore
from repro.serve.cache import RunCache, scenario_key
from repro.telemetry import metrics_registry


def _counter(name: str) -> float:
    metric = metrics_registry().get(name)
    return 0 if metric is None else metric.value


class TestRunCache:
    def test_cold_scenario_misses_both_tiers(self, tmp_path, make_scenario):
        cache = RunCache(ResultStore(tmp_path / "store"))
        assert cache.lookup(make_scenario()) is None
        assert _counter("repro_serve_misses_total") == 1

    def test_store_tier_assembles_then_memory_promotes(
        self, tmp_path, make_scenario
    ):
        store = ResultStore(tmp_path / "store")
        scenario = make_scenario()
        reference = run_scenario(scenario, jobs=1, store=store)
        cache = RunCache(store)

        tier, run = cache.lookup(scenario)
        assert tier == "store"
        assert run.trial_sets == reference.trial_sets

        tier2, run2 = cache.lookup(scenario)
        assert tier2 == "memory"
        assert run2 is run  # the very same object, not a re-assembly
        assert _counter("repro_serve_hits_store_total") == 1
        assert _counter("repro_serve_hits_memory_total") == 1

    def test_partial_store_is_cold(self, tmp_path, make_scenario):
        store = ResultStore(tmp_path / "store")
        scenario = make_scenario()
        run = run_scenario(scenario, jobs=1, store=store)
        # Evict one grid position's file: assembly must refuse.
        missing = store.path_for(scenario, scenario.sizes[1], 1)
        missing.unlink()
        cache = RunCache(store)
        assert cache.lookup(scenario) is None
        del run

    def test_lru_cap_evicts_oldest_run(self, tmp_path, make_scenario):
        store = ResultStore(tmp_path / "store")
        cache = RunCache(store, memory_entries=2)
        scenarios = [make_scenario(seed=seed) for seed in (1, 2, 3)]
        for scenario in scenarios:
            run_scenario(scenario, jobs=1, store=store)
            assert cache.lookup(scenario)[0] == "store"
        assert cache.stats()["memory_runs"] == 2
        # seed=1 was evicted: it re-assembles from the store tier.
        assert cache.lookup(scenarios[0])[0] == "store"
        assert cache.lookup(scenarios[2])[0] == "memory"

    def test_key_is_scenario_identity(self, make_scenario):
        assert scenario_key(make_scenario()) == scenario_key(make_scenario())
        assert scenario_key(make_scenario()) != scenario_key(
            make_scenario(seed=99)
        )
