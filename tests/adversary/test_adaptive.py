"""Tests for the adaptive (traffic-conditioned) adversary.

Covers the strategy semantics (targeted-leader suppression, one-shot
targeted crash, reactive congestion drops), eavesdropping with its
security-accounting ledger, the reconciliation invariants tying the
ledger to the ``fault_*`` totals, crash-horizon validation, and the
capability gate that keeps adaptive specs off protocols whose engine
path cannot feed the observation callback.
"""

import warnings

import numpy as np
import pytest

from repro.adversary import (
    AdaptiveAdversary,
    AdversarySpec,
    ArmedAdversary,
    adversarial_inputs,
)
from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.ring import lcr_ring
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.runtime import Scenario, TopologySpec, run_scenario
from repro.util.rng import RandomSource


def _arm(spec, n=8, seed=3, max_rounds=None):
    return spec.arm(RandomSource(seed), n, max_rounds=max_rounds)


def _observe(armed, round_index, senders, ports, receivers=None):
    senders = np.asarray(senders, dtype=np.int64)
    ports = np.asarray(ports, dtype=np.int64)
    if receivers is None:
        receivers = np.zeros(len(senders), dtype=np.int64)
    armed.observe_round(round_index, senders, ports, np.asarray(receivers))
    return senders, ports


class TestArming:
    def test_adaptive_spec_arms_adaptive_adversary(self):
        armed = _arm(AdversarySpec(adaptive="target-leader"))
        assert isinstance(armed, AdaptiveAdversary)
        assert armed.observes

    def test_eavesdrop_only_spec_arms_adaptive_adversary(self):
        armed = _arm(AdversarySpec(eavesdrop_rate=0.5))
        assert isinstance(armed, AdaptiveAdversary)

    def test_static_spec_stays_static(self):
        armed = _arm(AdversarySpec(drop_rate=0.5))
        assert isinstance(armed, ArmedAdversary)
        assert not isinstance(armed, AdaptiveAdversary)
        assert not armed.observes


class TestTargetLeader:
    def test_suppresses_dominant_sender_after_engaging(self):
        armed = _arm(AdversarySpec(adaptive="target-leader"), n=4)
        # Round 0 is pure observation (adaptive_after=1): no target yet.
        senders, ports = _observe(armed, 0, [0, 0, 0, 1], [0, 1, 2, 0])
        assert armed.current_target is None
        drop, _, _ = armed.message_masks(0, senders, ports)
        assert not drop.any()
        # Round 1: node 0 dominates the observed volume and is suppressed.
        senders, ports = _observe(armed, 1, [0, 0, 1, 2], [0, 1, 0, 0])
        assert armed.current_target == 0
        drop, _, _ = armed.message_masks(1, senders, ports)
        assert drop.tolist() == [True, True, False, False]
        assert armed.messages_lost_to_adaptivity == 2

    def test_target_follows_the_shifting_volume_leader(self):
        armed = _arm(AdversarySpec(adaptive="target-leader"), n=4)
        _observe(armed, 0, [0, 0], [0, 1])
        s, p = _observe(armed, 1, [1, 1, 1], [0, 1, 2])
        armed.message_masks(1, s, p)
        assert armed.current_target == 1  # 3 sends beats node 0's 2

    def test_adaptive_after_defers_engagement(self):
        armed = _arm(AdversarySpec(adaptive="target-leader", adaptive_after=3), n=4)
        for r in range(3):
            s, p = _observe(armed, r, [0, 0, 1], [0, 1, 0])
            drop, _, _ = armed.message_masks(r, s, p)
            assert armed.current_target is None
            assert not drop.any()
        s, p = _observe(armed, 3, [0, 1], [0, 0])
        assert armed.current_target == 0

    def test_rate_zero_suppresses_nothing(self):
        armed = _arm(AdversarySpec(adaptive="target-leader", adaptive_rate=0.0), n=4)
        _observe(armed, 0, [0, 0], [0, 1])
        s, p = _observe(armed, 1, [0, 0], [0, 1])
        drop, _, _ = armed.message_masks(1, s, p)
        assert not drop.any()
        assert armed.messages_lost_to_adaptivity == 0


class TestTargetLeaderCrash:
    def test_one_shot_crash_of_dominant_sender(self):
        armed = _arm(AdversarySpec(adaptive="target-leader-crash"), n=4)
        _observe(armed, 0, [2, 2, 0], [0, 1, 0])
        assert armed.crash_target is None
        _observe(armed, 1, [2, 0], [0, 0])
        assert armed.crash_target == 2
        assert armed.crashes_at(2) == [2]
        # One-shot: further observation never schedules a second crash.
        _observe(armed, 2, [0, 0, 0, 0], [0, 1, 2, 0])
        _observe(armed, 3, [0, 0], [0, 1])
        assert armed.crash_target == 2
        assert armed.crashes_at(3) == [] and armed.crashes_at(4) == []

    def test_end_to_end_crashes_exactly_one_node(self):
        spec = AdversarySpec(adaptive="target-leader-crash", seed=11)
        result = lcr_ring(16, RandomSource(5), adversary=spec)
        assert result.meta["fault_nodes_crashed"] == 1
        assert len(result.crashed) == 1


class TestCongestion:
    def test_hottest_edge_drops_at_full_rate(self):
        armed = _arm(AdversarySpec(adaptive="congestion", adaptive_rate=1.0), n=4)
        # Slot 0 (sender 0, port 0) carries 3x the traffic of slot 4.
        _observe(armed, 0, [0, 0, 0, 1], [0, 0, 0, 0])
        s, p = _observe(armed, 1, [0, 0, 0, 1], [0, 0, 0, 0])
        drop, _, _ = armed.message_masks(1, s, p)
        assert drop[:3].all()  # peak-load edge: scaled rate is exactly 1.0

    def test_cold_edges_drop_proportionally_less(self):
        armed = _arm(AdversarySpec(adaptive="congestion", adaptive_rate=1.0), n=4)
        _observe(armed, 0, [0] * 9 + [1], [0] * 9 + [0])
        _observe(armed, 1, [0, 1], [0, 0])
        # Staged per-message rates: hot edge at the full adaptive_rate,
        # cold edge scaled by its share of the peak load (2/10).
        assert armed._round_rates is not None
        assert armed._round_rates.tolist() == [1.0, 0.2]


class TestEavesdropping:
    def test_explicit_edges_are_tapped_at_arm_time(self):
        spec = AdversarySpec(eavesdrop_edges=((0, 1), (2, 0)))
        armed = _arm(spec, n=4)
        assert armed.edges_tapped == 2
        assert armed.messages_read == 0

    def test_rate_one_taps_every_edge_on_first_carry(self):
        armed = _arm(AdversarySpec(eavesdrop_rate=1.0), n=4)
        s, p = _observe(armed, 0, [0, 1, 2], [0, 0, 1], receivers=[1, 0, 3])
        assert armed.edges_tapped == 3
        assert armed.messages_read == 3
        assert armed.first_compromise_round == 0
        ledger = armed.security_ledger()
        assert [e["sender"] for e in ledger["edges"]] == [0, 1, 2]
        assert [e["receiver"] for e in ledger["edges"]] == [1, 0, 3]

    def test_ledger_reconciles_with_totals(self):
        armed = _arm(
            AdversarySpec(eavesdrop_rate=1.0, eavesdrop_drop_rate=1.0), n=4
        )
        for r in range(3):
            s, p = _observe(armed, r, [0, 1, 1], [0, 0, 1], receivers=[1, 0, 2])
            armed.message_masks(r, s, p)
        ledger = armed.security_ledger()
        assert ledger["messages_read"] == 9
        assert ledger["messages_read"] == sum(
            e["messages_read"] for e in ledger["edges"]
        )
        # Full interception: every read message is also dropped, and all
        # those drops are attributed to adaptivity (no static faults).
        assert ledger["messages_intercepted"] == 9
        assert armed.messages_dropped == 9
        assert armed.messages_lost_to_adaptivity == 9
        stats = armed.stats(rounds_executed=3)
        assert stats["eavesdrop_messages_read"] == ledger["messages_read"]
        assert stats["eavesdrop_edges_tapped"] == ledger["edges_tapped"]
        assert (
            stats["eavesdrop_messages_intercepted"]
            == ledger["messages_intercepted"]
        )
        assert stats["eavesdrop_first_compromise_round"] == 0

    def test_passive_wiretap_never_perturbs_the_run(self):
        base = lcr_ring(12, RandomSource(3))
        tapped = lcr_ring(
            12, RandomSource(3), adversary=AdversarySpec(eavesdrop_rate=1.0, seed=7)
        )
        assert (tapped.leader, tapped.rounds, tapped.messages) == (
            base.leader,
            base.rounds,
            base.messages,
        )
        assert tapped.meta["eavesdrop_messages_read"] > 0
        assert tapped.meta["eavesdrop_messages_intercepted"] == 0
        assert tapped.meta["fault_messages_dropped"] == 0

    def test_interception_reconciles_in_protocol_meta(self):
        spec = AdversarySpec(eavesdrop_rate=1.0, eavesdrop_drop_rate=0.5, seed=7)
        meta = lcr_ring(12, RandomSource(3), adversary=spec).meta
        assert meta["eavesdrop_messages_read"] > 0
        assert 0 < meta["eavesdrop_messages_intercepted"] <= (
            meta["eavesdrop_messages_read"]
        )
        # No static fault classes armed: every drop is an interception.
        assert (
            meta["fault_messages_dropped"]
            == meta["fault_messages_lost_to_adaptivity"]
            == meta["eavesdrop_messages_intercepted"]
        )

    def test_first_compromise_round_is_minus_one_without_traffic(self):
        armed = _arm(AdversarySpec(eavesdrop_edges=((3, 1),)), n=4)
        assert armed.stats(rounds_executed=5)[
            "eavesdrop_first_compromise_round"
        ] == -1
        assert armed.security_ledger()["first_compromise_round"] is None


class _Pinger(Node):
    def __init__(self, uid, degree, rng, rounds=4):
        super().__init__(uid, degree, rng)
        self.rounds = rounds

    def step(self, round_index, inbox):
        if round_index < self.rounds:
            return [(p, Message("ping", payload=self.uid)) for p in range(self.degree)]
        self.halt()
        return []


def _engine(topology, spec, seed=2, backend="fast"):
    rng = RandomSource(seed)
    armed = spec.arm(spec.derive_rng(rng), topology.n)
    nodes = [
        _Pinger(v, topology.degree(v), rng.spawn()) for v in range(topology.n)
    ]
    return SynchronousEngine(
        topology, nodes, MetricsRecorder(), backend=backend, adversary=armed
    ), armed


class TestCrashHorizon:
    def test_unreachable_crashes_listed_sorted(self):
        armed = _arm(AdversarySpec(crashes=((5, 9), (1, 20), (3, 2))), n=8)
        assert armed.unreachable_crashes(max_rounds=9) == [(1, 20), (5, 9)]
        assert armed.unreachable_crashes(max_rounds=21) == []

    def test_arm_with_max_rounds_warns_loudly(self):
        spec = AdversarySpec(crashes=((3, 10),))
        with pytest.warns(RuntimeWarning, match="partly unreachable"):
            _arm(spec, n=8, max_rounds=5)

    def test_warning_fires_once_per_armed_instance(self):
        armed = _arm(AdversarySpec(crashes=((3, 10),)), n=8)
        with pytest.warns(RuntimeWarning):
            armed.check_crash_horizon(5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            armed.check_crash_horizon(5)  # second check: silent

    def test_reachable_schedule_is_silent(self):
        spec = AdversarySpec(crashes=((3, 2),))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _arm(spec, n=8, max_rounds=10)

    def test_engine_run_checks_the_horizon(self):
        engine, _ = _engine(
            graphs.cycle(6), AdversarySpec(crashes=((0, 50),), seed=1)
        )
        with pytest.warns(RuntimeWarning, match="never fire"):
            engine.run(max_rounds=8)


class TestCapabilityGate:
    def test_scenario_on_unsupporting_protocol_rejected(self):
        scenario = Scenario(
            name="bad-adaptive",
            protocol="le-general/classical",
            topology=TopologySpec("erdos-renyi", params=(("p", 0.6),)),
            sizes=(8,),
            trials=1,
            adversary=AdversarySpec(adaptive="target-leader"),
        )
        with pytest.raises(ValueError, match="adaptive"):
            run_scenario(scenario, jobs=1)

    def test_analytic_agreement_rejects_adaptive_spec(self):
        spec = AdversarySpec(adaptive="congestion")
        with pytest.raises(ValueError, match="adaptive"):
            adversarial_inputs(8, 0.5, spec, RandomSource(0))

    def test_engine_capable_caller_passes_the_gate(self):
        spec = AdversarySpec(adaptive="congestion", input_schedule="tie")
        inputs = adversarial_inputs(
            8, 0.5, spec, RandomSource(0), engine_capable=True
        )
        assert sum(inputs) == 4  # tie schedule still applied


class TestRecoveryMetrics:
    def test_rounds_to_recovery_counts_clean_tail(self):
        spec = AdversarySpec(adaptive="target-leader-crash", seed=11)
        result = classical_le_complete(16, RandomSource(5), adversary=spec)
        meta = result.meta
        assert meta["fault_rounds_to_recovery"] >= 0
        assert (
            meta["fault_rounds_to_recovery"] < result.rounds
        )  # a fault did fire mid-run

    def test_lost_to_adaptivity_splits_from_static_drops(self):
        spec = AdversarySpec(
            drop_rate=0.3, adaptive="target-leader", adaptive_rate=1.0, seed=13
        )
        meta = lcr_ring(16, RandomSource(7), adversary=spec).meta
        assert meta["fault_messages_lost_to_adaptivity"] > 0
        # Static drops exist too, so the total strictly exceeds the
        # adaptivity-attributed share.
        assert (
            meta["fault_messages_dropped"]
            > meta["fault_messages_lost_to_adaptivity"]
        )
