"""Fault-injected sweeps: determinism, caching, backend invariance.

The scenario-level acceptance bar: same adversary seed ⇒ bit-identical
aggregates (for any job count and either engine backend), and the result
store keys on the adversary spec so faulty and fault-free runs never
collide.
"""

import os

import pytest

from repro.adversary import AdversarySpec, adversarial_inputs
from repro.runtime import (
    ResultStore,
    Scenario,
    TopologySpec,
    clear_topology_memo,
    get_scenario,
    run_scenario,
)
from repro.util.rng import RandomSource


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_topology_memo()
    yield
    clear_topology_memo()


def _lossy_scenario(**overrides):
    base = dict(
        name="adv-test/kpp",
        protocol="le-complete/classical",
        topology=TopologySpec("complete"),
        sizes=(16, 32),
        trials=3,
        seed=7,
        adversary=AdversarySpec(drop_rate=0.1),
    )
    base.update(overrides)
    return Scenario(**base)


class TestDeterminism:
    def test_jobs_do_not_change_fault_aggregates(self):
        scenario = _lossy_scenario()
        serial = run_scenario(scenario, jobs=1)
        parallel = run_scenario(scenario, jobs=4)
        assert serial.trial_sets == parallel.trial_sets

    def test_same_seed_same_results(self):
        scenario = _lossy_scenario()
        assert (
            run_scenario(scenario, jobs=1).trial_sets
            == run_scenario(scenario, jobs=1).trial_sets
        )

    def test_adversary_seed_pins_fault_pattern(self):
        pinned = _lossy_scenario(
            adversary=AdversarySpec(drop_rate=0.5, seed=3), sizes=(16,), trials=4
        )
        run = run_scenario(pinned, jobs=1)
        # Every trial replays the identical drop pattern: zero variance in
        # the number of adversary drops is only visible through the mean
        # being an integer... instead check trial-level equality directly.
        outcomes = [
            pinned.run_trial(16, rng)
            for rng in [RandomSource(pinned.seed).spawn() for _ in range(3)]
        ]
        dropped = {o.extra["fault_messages_dropped"] for o in outcomes}
        assert len(dropped) == 1
        assert run.trial_sets[0].extra["fault_messages_dropped"] in dropped

    def test_backend_invariance_under_drops(self):
        # Pin scalar dispatch so the reference backend genuinely runs
        # (batch-capable protocols resolve to the backend-independent
        # batch path under "auto"); batch parity has its own suite.
        scenario = _lossy_scenario().with_overrides(node_api="scalar")
        runs = {}
        for backend in ("fast", "reference"):
            os.environ["REPRO_ENGINE"] = backend
            try:
                runs[backend] = run_scenario(scenario, jobs=1).trial_sets
            finally:
                os.environ.pop("REPRO_ENGINE", None)
        assert runs["fast"] == runs["reference"]

    def test_catalogued_fault_families_run(self):
        for name in (
            "complete-le-lossy/classical",
            "ring-le-lossy/lcr",
            "ring-le-crash/hs",
            "agreement-worstcase/classical",
        ):
            scenario = get_scenario(name)
            run = run_scenario(scenario, jobs=1, sizes=[scenario.sizes[0]], trials=1)
            assert run.trial_sets[0].trials == 1


class TestCacheKeys:
    def test_adversary_changes_the_cache_key(self, tmp_path):
        store = ResultStore(tmp_path)
        benign = _lossy_scenario(adversary=None)
        lossy = _lossy_scenario()
        lossier = _lossy_scenario(adversary=AdversarySpec(drop_rate=0.2))
        pinned = _lossy_scenario(adversary=AdversarySpec(drop_rate=0.1, seed=1))
        paths = {
            store.path_for(s, 16, 0) for s in (benign, lossy, lossier, pinned)
        }
        assert len(paths) == 4

    def test_cached_fault_sweep_is_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = _lossy_scenario()
        cold = run_scenario(scenario, jobs=1, store=store)
        warm = run_scenario(scenario, jobs=1, store=store)
        assert cold.trial_sets == warm.trial_sets
        # The faulty entries must not satisfy the fault-free scenario.
        benign = _lossy_scenario(adversary=None)
        assert store.load(benign, 16, 0) is None

    def test_null_adversary_normalizes_to_fault_free_key(self, tmp_path):
        store = ResultStore(tmp_path)
        explicit_null = _lossy_scenario(adversary=AdversarySpec())
        benign = _lossy_scenario(adversary=None)
        assert store.path_for(explicit_null, 16, 0) == store.path_for(benign, 16, 0)


class TestCapabilities:
    def test_unsupported_protocol_rejected(self):
        scenario = _lossy_scenario(protocol="le-complete/quantum")
        with pytest.raises(ValueError, match="does not support adversary"):
            scenario.run_trial(16, RandomSource(0))

    def test_input_adversary_rejected_on_engine_protocol(self):
        scenario = _lossy_scenario(adversary=AdversarySpec(input_schedule="tie"))
        with pytest.raises(ValueError, match="inputs"):
            scenario.run_trial(16, RandomSource(0))

    def test_message_faults_rejected_on_agreement(self):
        with pytest.raises(ValueError, match="input adversary"):
            adversarial_inputs(
                8, 0.3, AdversarySpec(drop_rate=0.1), RandomSource(0)
            )


class TestInputSchedules:
    def test_tie_is_worst_case_split(self):
        inputs = adversarial_inputs(
            9, 0.3, AdversarySpec(input_schedule="tie"), RandomSource(0)
        )
        assert sum(inputs) == 5  # ceil(9/2), fraction ignored

    def test_spread_keeps_the_count(self):
        inputs = adversarial_inputs(
            10, 0.3, AdversarySpec(input_schedule="spread"), RandomSource(0)
        )
        assert sum(inputs) == 3
        assert inputs != [1, 1, 1] + [0] * 7  # not the benign prefix

    def test_shuffle_is_deterministic_per_stream(self):
        spec = AdversarySpec(input_schedule="shuffle", seed=5)
        a = adversarial_inputs(12, 0.5, spec, RandomSource(0))
        b = adversarial_inputs(12, 0.5, spec, RandomSource(99))
        assert a == b  # pinned adversary seed ignores the trial stream
        assert sum(a) == 6

    def test_flip_fraction_flips_exactly(self):
        spec = AdversarySpec(flip_fraction=0.25, seed=1)
        inputs = adversarial_inputs(8, 0.0, spec, RandomSource(0))
        assert sum(inputs) == 2  # all-zeros base, two flips

    def test_null_spec_matches_benign(self):
        assert adversarial_inputs(10, 0.3, None, RandomSource(0)) == [1] * 3 + [0] * 7
