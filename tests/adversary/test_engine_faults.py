"""Engine-level fault semantics, identical on both backends.

Deterministic, schedule-driven cases (no rate randomness) pin down the
exact contract: what gets dropped, when delayed messages arrive, how
duplicates are ordered, and how undelivered accounting attributes losses.
"""

import pytest

from repro.adversary import AdversarySpec
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource

BACKENDS = ("fast", "reference")


class Recorder(Node):
    """Sends a tagged message on every port each round; records its inbox."""

    def __init__(self, uid, degree, rng, send_rounds=2, lifetime=6):
        super().__init__(uid, degree, rng)
        self.send_rounds = send_rounds
        self.lifetime = lifetime
        self.received = []

    def step(self, round_index, inbox):
        self.received.extend(
            (round_index, port, m.sender, m.payload) for port, m in inbox
        )
        if round_index < self.send_rounds:
            return [
                (p, Message("t", payload=(self.uid, round_index)))
                for p in range(self.degree)
            ]
        if round_index >= self.lifetime:
            self.halt()
        return []


def _run(topology, spec, backend, seed=3, **node_kwargs):
    rng = RandomSource(seed)
    armed = spec.arm(spec.derive_rng(rng), topology.n) if spec else None
    nodes = [
        Recorder(v, topology.degree(v), rng.spawn(), **node_kwargs)
        for v in range(topology.n)
    ]
    metrics = MetricsRecorder()
    engine = SynchronousEngine(
        topology, nodes, metrics, backend=backend, adversary=armed
    )
    engine.run(max_rounds=10)
    return engine, metrics, nodes


class TestScheduledDrops:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_edge_is_dropped(self, backend):
        topology = graphs.cycle(4)
        # Drop node 0's round-0 send on port 0 only.
        spec = AdversarySpec(drop_schedule=((0, 0, 0),))
        engine, metrics, nodes = _run(topology, spec, backend)
        clean_engine, clean_metrics, clean_nodes = _run(topology, None, backend)
        # Metrics still charge the dropped send.
        assert metrics.messages == clean_metrics.messages
        received = [n.received for n in nodes]
        clean = [n.received for n in clean_nodes]
        missing = [
            entry
            for box, clean_box in zip(received, clean)
            for entry in clean_box
            if entry not in box
        ]
        assert len(missing) == 1
        assert missing[0][2] == 0  # the dropped message came from node 0
        assert engine.undelivered_detail()["dropped_adversary"] == 1
        assert engine.fault_stats()["fault_messages_dropped"] == 1


class TestDelay:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delayed_messages_arrive_late_and_first(self, backend):
        topology = graphs.path(2)
        spec = AdversarySpec(delay_rate=1.0, delay_rounds=2)
        engine, _, nodes = _run(topology, spec, backend, send_rounds=1)
        # Round-0 sends normally arrive in round 1; delayed by 2 they land
        # in round 3.
        for node in nodes:
            rounds_seen = [entry[0] for entry in node.received]
            assert rounds_seen == [3]
        assert engine.fault_stats()["fault_messages_delayed"] == 2
        assert engine.undelivered() == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delay_past_halt_counts_in_flight(self, backend):
        topology = graphs.path(2)
        spec = AdversarySpec(delay_rate=1.0, delay_rounds=9)
        engine, _, nodes = _run(topology, spec, backend, send_rounds=1, lifetime=3)
        assert all(node.received == [] for node in nodes)
        # Both delayed messages never arrived: still in flight at return.
        assert engine.undelivered_detail()["in_flight"] == 2


class TestDuplicates:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicates_arrive_back_to_back(self, backend):
        topology = graphs.path(2)
        spec = AdversarySpec(duplicate_rate=1.0)
        engine, metrics, nodes = _run(topology, spec, backend, send_rounds=1)
        for node in nodes:
            assert len(node.received) == 2
            assert node.received[0] == node.received[1]
        # Duplication is free for the protocol: one charge per send.
        assert metrics.messages == 2
        assert engine.fault_stats()["fault_messages_duplicated"] == 2


class TestCrashes:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_before_round_zero_silences_node(self, backend):
        topology = graphs.cycle(4)
        spec = AdversarySpec(crashes=((2, 0),))
        engine, _, nodes = _run(topology, spec, backend, send_rounds=1)
        senders_seen = {entry[2] for node in nodes for entry in node.received}
        assert 2 not in senders_seen
        assert nodes[2].received == []
        assert engine.fault_stats()["fault_nodes_crashed"] == 1
        # Node 2's neighbours each sent it one message: adversary losses.
        assert engine.undelivered_detail()["dropped_adversary"] == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_mid_run_keeps_earlier_sends(self, backend):
        topology = graphs.cycle(4)
        spec = AdversarySpec(crashes=((1, 1),))
        _, _, nodes = _run(topology, spec, backend, send_rounds=2)
        # Node 1's round-0 sends were delivered (crash hits before round 1).
        round0_from_1 = [
            entry
            for node in nodes
            for entry in node.received
            if entry[2] == 1 and entry[3] == (1, 0)
        ]
        assert len(round0_from_1) == 2
        round1_from_1 = [
            entry
            for node in nodes
            for entry in node.received
            if entry[2] == 1 and entry[3] == (1, 1)
        ]
        assert round1_from_1 == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crashing_everyone_halts_the_run(self, backend):
        topology = graphs.cycle(4)
        spec = AdversarySpec(crashes=tuple((v, 1) for v in range(4)))
        engine, metrics, _ = _run(topology, spec, backend)
        assert engine.rounds_executed == 1
        assert metrics.rounds == 1


class TestAccountingMeta:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_keys_always_present_when_armed(self, backend):
        topology = graphs.cycle(4)
        # Armed but harmless: scheduled drop on a round that never sends.
        spec = AdversarySpec(drop_schedule=((9, 0, 0),))
        engine, _, _ = _run(topology, spec, backend)
        meta = engine.accounting_meta()
        assert meta["fault_messages_dropped"] == 0
        assert meta["undelivered"] == 0
        # No fault fired: the whole run is the clean tail.
        assert meta["fault_rounds_to_recovery"] == engine.rounds_executed

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovery_counts_clean_tail_rounds(self, backend):
        topology = graphs.cycle(4)
        spec = AdversarySpec(drop_schedule=((1, 0, 0),))
        engine, _, _ = _run(topology, spec, backend)
        meta = engine.accounting_meta()
        # Fault fired in round 1; the run executed rounds 0..6 (halt at
        # lifetime 6), so 5 clean rounds followed.
        assert meta["fault_rounds_to_recovery"] == engine.rounds_executed - 2

    def test_unarmed_engine_reports_no_fault_stats(self):
        topology = graphs.cycle(4)
        engine, _, _ = _run(topology, None, "fast")
        assert engine.fault_stats() is None
        assert engine.accounting_meta() == {}


class TestCrashStopSuccess:
    """Crash-stop convention: correctness applies to survivors only."""

    def test_crashed_candidates_do_not_invalidate_survivors(self):
        from repro.classical.leader_election.complete_kpp import (
            classical_le_complete,
        )

        from repro.network.node import Status

        spec = AdversarySpec(crash_count=6, crash_by=2, seed=4)
        result = classical_le_complete(64, RandomSource(0), adversary=spec)
        assert result.meta["fault_nodes_crashed"] == 6
        assert len(result.crashed) == 6
        # A crashed candidate is frozen at ⊥, which must not count against
        # the surviving nodes' election.
        assert any(result.statuses[v] is Status.UNDECIDED for v in result.crashed)
        assert result.success
        assert result.leader is not None
        assert result.leader not in result.crashed

    def test_crashed_nodes_property_empty_without_adversary(self):
        from repro.classical.leader_election.complete_kpp import (
            classical_le_complete,
        )

        result = classical_le_complete(16, RandomSource(0))
        assert result.crashed == frozenset()


class TestUndeliveredSplit:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_protocol_slack_vs_adversary_losses(self, backend):
        topology = graphs.path(3)

        class EdgeCase(Node):
            # Node 0 halts immediately; node 1 keeps messaging both sides.
            def step(self, round_index, inbox):
                if self.uid == 0:
                    self.halt()
                    return []
                if self.uid == 1 and round_index < 3:
                    return [(p, Message("m")) for p in range(self.degree)]
                if round_index >= 3:
                    self.halt()
                return []

        rng = RandomSource(0)
        spec = AdversarySpec(crashes=((2, 1),))
        armed = spec.arm(spec.derive_rng(rng), 3)
        nodes = [EdgeCase(v, topology.degree(v), rng.spawn()) for v in range(3)]
        engine = SynchronousEngine(
            topology, nodes, MetricsRecorder(), backend=backend, adversary=armed
        )
        engine.run(max_rounds=6)
        detail = engine.undelivered_detail()
        # Messages to node 0 (halted by choice) are protocol slack; messages
        # to node 2 (crash-stopped before its first read) are adversary
        # losses — three each, one per sending round.
        assert detail["dropped_protocol"] == 3
        assert detail["dropped_adversary"] == 3
        assert engine.undelivered() == 6
