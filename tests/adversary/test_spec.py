"""Tests for AdversarySpec: validation, parsing, classification, arming."""

import pytest

from repro.adversary import NULL_ADVERSARY, AdversarySpec, ArmedAdversary
from repro.util.rng import RandomSource


class TestValidation:
    def test_null_by_default(self):
        spec = AdversarySpec()
        assert spec.is_null
        assert not spec.has_message_faults
        assert not spec.has_crashes
        assert not spec.has_input_faults
        assert spec.required_capabilities() == set()

    @pytest.mark.parametrize(
        "field", ["drop_rate", "delay_rate", "duplicate_rate", "flip_fraction"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ValueError, match=field):
            AdversarySpec(**{field: value})

    def test_delay_rounds_positive(self):
        with pytest.raises(ValueError, match="delay_rounds"):
            AdversarySpec(delay_rounds=0)

    def test_unknown_input_schedule_rejected(self):
        with pytest.raises(ValueError, match="input_schedule"):
            AdversarySpec(input_schedule="chaos")

    def test_bad_schedule_entries_rejected(self):
        with pytest.raises(ValueError, match="drop_schedule"):
            AdversarySpec(drop_schedule=((1, 2),))
        with pytest.raises(ValueError, match="crashes"):
            AdversarySpec(crashes=((-1, 0),))

    def test_capability_classification(self):
        assert AdversarySpec(drop_rate=0.1).required_capabilities() == {"faults"}
        assert AdversarySpec(crash_count=1).required_capabilities() == {"faults"}
        assert AdversarySpec(input_schedule="tie").required_capabilities() == {
            "inputs"
        }
        both = AdversarySpec(drop_rate=0.1, flip_fraction=0.1)
        assert both.required_capabilities() == {"faults", "inputs"}

    @pytest.mark.parametrize(
        "field", ["adaptive_rate", "eavesdrop_rate", "eavesdrop_drop_rate"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_adaptive_rates_must_be_probabilities(self, field, value):
        kwargs = {field: value}
        if field == "eavesdrop_drop_rate":
            kwargs["eavesdrop_rate"] = 0.5
        with pytest.raises(ValueError, match=field):
            AdversarySpec(**kwargs)

    def test_unknown_adaptive_strategy_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            AdversarySpec(adaptive="chaos-monkey")

    def test_negative_adaptive_after_rejected(self):
        with pytest.raises(ValueError, match="adaptive_after"):
            AdversarySpec(adaptive="congestion", adaptive_after=-1)

    def test_bad_eavesdrop_edges_rejected(self):
        with pytest.raises(ValueError, match="eavesdrop_edges"):
            AdversarySpec(eavesdrop_edges=((1, 2, 3),))
        with pytest.raises(ValueError, match="eavesdrop_edges"):
            AdversarySpec(eavesdrop_edges=((-1, 0),))

    def test_interception_needs_a_tap(self):
        with pytest.raises(ValueError, match="needs a tap"):
            AdversarySpec(eavesdrop_drop_rate=0.5)
        # Either tap source satisfies the constraint.
        AdversarySpec(eavesdrop_rate=0.1, eavesdrop_drop_rate=0.5)
        AdversarySpec(eavesdrop_edges=((0, 1),), eavesdrop_drop_rate=0.5)

    def test_adaptive_capability_classification(self):
        adaptive = AdversarySpec(adaptive="target-leader")
        assert adaptive.required_capabilities() == {"adaptive", "faults"}
        assert adaptive.has_adaptive and adaptive.has_message_faults
        crash = AdversarySpec(adaptive="target-leader-crash")
        assert crash.has_crashes and not crash.has_message_faults
        wiretap = AdversarySpec(eavesdrop_rate=0.2)
        assert wiretap.required_capabilities() == {"adaptive", "faults"}
        assert wiretap.has_adaptive and not wiretap.has_message_faults
        assert not wiretap.is_null  # passive, but it observes and ledgers
        intercepting = AdversarySpec(eavesdrop_rate=0.2, eavesdrop_drop_rate=0.5)
        assert intercepting.adaptive_may_drop and intercepting.has_message_faults


class TestParse:
    def test_empty_and_none_parse_to_null(self):
        assert AdversarySpec.parse(None).is_null
        assert AdversarySpec.parse("").is_null
        assert AdversarySpec.parse("none").is_null

    def test_full_grammar_round_trip(self):
        spec = AdversarySpec.parse(
            "drop=0.1,delay=0.05,delay-rounds=2,dup=0.01,crash=3@5,"
            "crash-node=7@2,drop-edge=1:0:3,input=tie,flip=0.1,seed=42"
        )
        assert spec == AdversarySpec(
            drop_rate=0.1,
            delay_rate=0.05,
            delay_rounds=2,
            duplicate_rate=0.01,
            crash_count=3,
            crash_by=5,
            crashes=((7, 2),),
            drop_schedule=((1, 0, 3),),
            input_schedule="tie",
            flip_fraction=0.1,
            seed=42,
        )

    def test_crash_without_round_defaults_to_first(self):
        spec = AdversarySpec.parse("crash=2")
        assert spec.crash_count == 2
        assert spec.crash_by == 1

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary key"):
            AdversarySpec.parse("explode=1")

    def test_malformed_clause_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            AdversarySpec.parse("drop")
        with pytest.raises(ValueError, match="bad adversary clause"):
            AdversarySpec.parse("drop=lots")

    def test_describe_is_compact_and_stable(self):
        spec = AdversarySpec(drop_rate=0.1, crash_count=2, crash_by=4)
        assert spec.describe() == "drop=0.1,crash=2@<4"
        assert NULL_ADVERSARY.describe() == "none"

    def test_adaptive_grammar_round_trip(self):
        spec = AdversarySpec.parse(
            "adaptive=target-leader,adaptive-rate=0.5,adaptive-after=2,"
            "eavesdrop=0.2,eavesdrop-drop=0.3,seed=7"
        )
        assert spec == AdversarySpec(
            adaptive="target-leader",
            adaptive_rate=0.5,
            adaptive_after=2,
            eavesdrop_rate=0.2,
            eavesdrop_drop_rate=0.3,
            seed=7,
        )
        assert spec.describe() == (
            "adaptive=target-leader,adaptive-rate=0.5,adaptive-after=2,"
            "eavesdrop=0.2,eavesdrop-drop=0.3,seed=7"
        )

    def test_eavesdrop_edge_list_parses(self):
        spec = AdversarySpec.parse("eavesdrop=0:1+3:0")
        assert spec.eavesdrop_edges == ((0, 1), (3, 0))
        assert spec.eavesdrop_rate == 0.0
        assert AdversarySpec.parse_eavesdrop("0.4") == {"eavesdrop_rate": 0.4}

    @pytest.mark.parametrize(
        "text",
        [
            "explode=1",  # unknown key
            "drop",  # not key=value
            "drop=lots",  # bad value
            "adaptive-rate=fast",  # bad adaptive value
            "eavesdrop=a:b",  # bad edge list
            "adaptive=chaos-monkey",  # unknown strategy (spec-level)
            "eavesdrop-drop=0.5",  # interception without a tap (spec-level)
        ],
    )
    def test_every_parse_error_echoes_the_grammar(self, text):
        with pytest.raises(ValueError) as excinfo:
            AdversarySpec.parse(text)
        message = str(excinfo.value)
        assert "accepted adversary grammar" in message
        assert "adaptive=STRATEGY" in message
        assert "eavesdrop=RATE|S:P[+S:P...]" in message

    def test_clause_errors_carry_value_hints(self):
        with pytest.raises(ValueError, match="ROUND:SENDER:PORT"):
            AdversarySpec.parse("drop-edge=1:2")
        with pytest.raises(ValueError, match=r"SENDER:PORT\[\+SENDER:PORT"):
            AdversarySpec.parse("eavesdrop=x:y")
        with pytest.raises(ValueError, match=r"N\[@R\]"):
            AdversarySpec.parse("crash=many")


class TestDerivationAndArming:
    def test_unpinned_stream_varies_per_trial(self):
        spec = AdversarySpec(drop_rate=0.5)
        root = RandomSource(0)
        a = spec.derive_rng(root).generator.random(8)
        b = spec.derive_rng(root).generator.random(8)
        assert list(a) != list(b)

    def test_pinned_seed_gives_one_stream(self):
        spec = AdversarySpec(drop_rate=0.5, seed=9)
        a = spec.derive_rng(RandomSource(0)).generator.random(8)
        b = spec.derive_rng(RandomSource(1)).generator.random(8)
        assert list(a) == list(b)

    def test_arm_builds_crash_plan(self):
        spec = AdversarySpec(crashes=((3, 2), (1, 0)), crash_count=2, crash_by=4)
        armed = spec.arm(RandomSource(5), n=8)
        assert isinstance(armed, ArmedAdversary)
        scheduled = {
            v for r in range(8) for v in armed.crashes_at(r)
        }
        assert {1, 3} <= scheduled
        assert len(scheduled) == 4  # 2 explicit + 2 random victims
        assert armed.crashes_at(0) and 1 in armed.crashes_at(0)
        assert 3 in armed.crashes_at(2)

    def test_explicit_crash_beats_random_victim(self):
        # Node 0 explicitly crashes at round 7; even if the random draw
        # also picks node 0, the explicit round must win.
        spec = AdversarySpec(crashes=((0, 7),), crash_count=8, crash_by=3)
        armed = spec.arm(RandomSource(1), n=8)
        assert 0 in armed.crashes_at(7)

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = AdversarySpec(drop_rate=0.1, crashes=((1, 2),))
        assert hash(spec) == hash(AdversarySpec(drop_rate=0.1, crashes=((1, 2),)))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_key_dict_is_json_ready(self):
        import json

        spec = AdversarySpec(drop_rate=0.1, drop_schedule=((0, 1, 2),))
        text = json.dumps(spec.key_dict(), sort_keys=True)
        assert "drop_rate" in text and "[0, 1, 2]" in text

    def test_key_dict_separates_adaptive_identities(self):
        static = AdversarySpec(drop_rate=0.1)
        adaptive = AdversarySpec(drop_rate=0.1, adaptive="congestion")
        assert static.key_dict() != adaptive.key_dict()
        tapped = AdversarySpec(eavesdrop_edges=((0, 1),))
        assert tapped.key_dict()["eavesdrop_edges"] == [[0, 1]]
