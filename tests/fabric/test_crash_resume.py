"""Satellite: a worker SIGKILLed mid-shard never costs the sweep anything.

Three real worker processes run the sweep; one carries a
:class:`FaultPlan` that SIGKILLs it after its first executed trial — the
honest crash: no cleanup, no lease release, a fresh heartbeat left
behind.  The supervisor plus lease expiry must resume the sweep to a
completion bit-identical to ``jobs=1``, with no orphaned leases.
"""

from repro.fabric import FabricQueue, FaultPlan, run_fabric_sweep
from repro.runtime import ResultStore, run_scenario


class TestCrashResume:
    def test_sigkilled_worker_resumes_bit_identical(
        self, tmp_path, make_scenario
    ):
        scenario = make_scenario(sizes=(8, 12, 16, 20), trials=2)
        serial = run_scenario(scenario, jobs=1)

        fabric_dir = tmp_path / "fabric"
        run = run_fabric_sweep(
            scenario,
            fabric_dir,
            workers=3,
            lease_ttl=0.3,  # short TTL so the takeover happens in-test
            fault_plans={0: FaultPlan(kill_after_trials=1)},
            timeout=120.0,
        )

        # Bit-identical aggregates, the tentpole invariant.
        assert run.trial_sets == serial.trial_sets

        queue = FabricQueue(fabric_dir)
        assert queue.all_done()
        # No orphaned leases survive a completed sweep.
        assert list(queue.leases_dir.glob("p*.json")) == []
        # No torn tmp files either — every write was atomic.
        assert list(queue.store().root.glob("*.tmp")) == []
        assert run.meta["executor"] == "fabric"
        assert run.meta["workers_spawned"] >= 3

    def test_store_contents_identical_to_serial_run(
        self, tmp_path, make_scenario
    ):
        # The fabric's store files must be byte-for-byte what a serial
        # cached run writes: same names (content-addressed keys), same
        # payloads.
        scenario = make_scenario()
        serial_store = ResultStore(tmp_path / "serial")
        run_scenario(scenario, jobs=1, store=serial_store)
        serial_files = {
            p.name: p.read_bytes() for p in serial_store.root.glob("*.json")
        }

        fabric_store = ResultStore(tmp_path / "fabric-store")
        run_fabric_sweep(
            scenario,
            tmp_path / "fabric",
            workers=2,
            store=fabric_store,
            lease_ttl=0.3,
            fault_plans={1: FaultPlan(kill_after_trials=1)},
            timeout=120.0,
        )
        fabric_files = {
            p.name: p.read_bytes() for p in fabric_store.root.glob("*.json")
        }
        assert fabric_files == serial_files
