"""CLI surface of the fabric: sweep --fabric, worker, fabric status."""

import json

from repro.cli import main


def _sweep(fabric_dir, *extra):
    return main(
        ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
         "--trials", "2", "--fabric", str(fabric_dir), "--workers", "2",
         "--lease-ttl", "5", "--no-cache", *extra]
    )


class TestSweepFabric:
    def test_fabric_sweep_matches_pool_sweep(self, tmp_path, capsys):
        assert _sweep(tmp_path / "fab") == 0
        fabric_out = capsys.readouterr().out
        assert main(
            ["sweep", "--scenario", "ring-le/lcr", "--sizes", "8,12",
             "--trials", "2", "--jobs", "1", "--no-cache"]
        ) == 0
        pool_out = capsys.readouterr().out
        assert fabric_out == pool_out  # same table, same fit, bit for bit

    def test_workers_without_fabric_rejected(self, capsys):
        assert main(
            ["sweep", "--scenario", "ring-le/lcr", "--workers", "2"]
        ) == 2
        assert "--fabric" in capsys.readouterr().err

    def test_bad_inject_kill_rejected(self, tmp_path, capsys):
        assert main(
            ["sweep", "--scenario", "ring-le/lcr",
             "--fabric", str(tmp_path / "fab"), "--inject-kill", "zero@one"]
        ) == 2
        assert "W[@T]" in capsys.readouterr().err

    def test_inject_kill_still_completes(self, tmp_path, capsys):
        assert _sweep(
            tmp_path / "fab", "--inject-kill", "0@1", "--lease-ttl", "0.3"
        ) == 0
        assert "ring-le/lcr" in capsys.readouterr().out


class TestWorkerCommand:
    def test_worker_drains_job_after_fleet(self, tmp_path, capsys):
        assert _sweep(tmp_path / "fab") == 0
        capsys.readouterr()
        assert main(["worker", str(tmp_path / "fab"), "--id", "late"]) == 0
        out = capsys.readouterr().out
        assert "worker late" in out
        assert "job done" in out

    def test_worker_without_job_is_exit_2(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path / "nope")]) == 2
        assert "no fabric job" in capsys.readouterr().err


class TestStatusCommand:
    def test_status_human_readable(self, tmp_path, capsys):
        assert _sweep(tmp_path / "fab") == 0
        capsys.readouterr()
        assert main(["fabric", "status", str(tmp_path / "fab")]) == 0
        out = capsys.readouterr().out
        assert "2 done" in out
        assert "reaper" in out

    def test_status_json(self, tmp_path, capsys):
        assert _sweep(tmp_path / "fab") == 0
        capsys.readouterr()
        assert main(["fabric", "status", str(tmp_path / "fab"), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["shards"]["done"] == 2
        assert status["shards"]["pending"] == 0
        assert "reaper" in status

    def test_status_without_job_is_exit_2(self, tmp_path, capsys):
        assert main(["fabric", "status", str(tmp_path / "nope")]) == 2
        assert "no fabric job" in capsys.readouterr().err
