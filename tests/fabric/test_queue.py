"""Queue-layer guarantees: atomic claims, lease lifecycle, done markers.

Every time-dependent assertion drives the synthetic ``now`` parameter —
no sleeps, no flaky clock margins.
"""

import json

import pytest

from repro.fabric import FabricQueue, scenario_to_dict

TTL = 10.0
T0 = 1000.0


@pytest.fixture
def queue(tmp_path, make_scenario):
    q = FabricQueue(tmp_path / "job")
    q.create_job(make_scenario(), lease_ttl=TTL)
    return q


class TestJobLifecycle:
    def test_layout_and_shards(self, queue, make_scenario):
        assert queue.scenario() == make_scenario()
        assert queue.lease_ttl() == TTL
        assert queue.shard_ids() == ["p0000", "p0001", "p0002"]
        assert queue.shard("p0001") == {"shard": "p0001", "position": 1, "n": 12}
        assert queue.pending_shards() == ["p0000", "p0001", "p0002"]
        assert not queue.all_done()

    def test_create_is_idempotent_for_same_scenario(self, queue, make_scenario):
        queue.mark_done("p0000", "w", {})
        queue.create_job(make_scenario(), lease_ttl=TTL)
        # Resume path: shard files and done markers survive re-creation.
        assert queue.pending_shards() == ["p0001", "p0002"]

    def test_create_refuses_different_scenario(self, queue, make_scenario):
        with pytest.raises(ValueError, match="one directory carries one job"):
            queue.create_job(make_scenario(seed=99))

    def test_create_refuses_bad_ttl(self, tmp_path, make_scenario):
        with pytest.raises(ValueError, match="lease_ttl"):
            FabricQueue(tmp_path / "bad").create_job(
                make_scenario(), lease_ttl=0.0
            )

    def test_missing_manifest_is_loud(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no fabric job"):
            FabricQueue(tmp_path / "empty").manifest()

    def test_manifest_carries_scenario_dict(self, queue, make_scenario):
        assert queue.manifest()["scenario"] == scenario_to_dict(make_scenario())

    def test_store_defaults_under_root(self, queue):
        assert queue.store().root == queue.root / "results"


class TestClaims:
    def test_claim_is_exclusive(self, queue):
        assert queue.claim("p0000", "alice", now=T0)
        assert not queue.claim("p0000", "bob", now=T0)  # the double claim
        state, lease = queue.lease_state("p0000", now=T0)
        assert state == "live"
        assert lease["worker"] == "alice"

    def test_release_frees_only_our_lease(self, queue):
        queue.claim("p0000", "alice", now=T0)
        queue.release("p0000", "bob")  # not the owner: no-op
        assert queue.lease_state("p0000", now=T0)[0] == "live"
        queue.release("p0000", "alice")
        assert queue.lease_state("p0000", now=T0)[0] == "free"

    def test_heartbeat_keeps_lease_live(self, queue):
        queue.claim("p0000", "alice", now=T0)
        queue.heartbeat("p0000", "alice", now=T0 + TTL)
        assert queue.lease_state("p0000", now=T0 + 1.5 * TTL)[0] == "live"

    def test_heartbeat_after_takeover_is_noop(self, queue):
        queue.claim("p0000", "alice", now=T0)
        assert queue.break_lease("p0000", "bob", now=T0 + 2 * TTL)
        queue.heartbeat("p0000", "alice", now=T0 + 2 * TTL)
        _, lease = queue.lease_state("p0000", now=T0 + 2 * TTL)
        assert lease["worker"] == "bob"

    def test_lease_expires_without_heartbeat(self, queue):
        queue.claim("p0000", "alice", now=T0)
        assert queue.lease_state("p0000", now=T0 + TTL)[0] == "live"
        assert queue.lease_state("p0000", now=T0 + TTL + 0.1)[0] == "expired"

    def test_corrupt_lease_detected(self, queue):
        queue.claim("p0000", "alice", now=T0)
        (queue.leases_dir / "p0000.json").write_text("{torn lease")
        state, lease = queue.lease_state("p0000")
        assert state == "corrupt"
        assert lease is None


class TestTakeovers:
    def test_break_refuses_live_lease(self, queue):
        queue.claim("p0000", "alice", now=T0)
        assert not queue.break_lease("p0000", "bob", now=T0 + 0.5 * TTL)

    def test_break_takes_expired_lease(self, queue):
        queue.claim("p0000", "alice", now=T0)
        assert queue.break_lease("p0000", "bob", now=T0 + 2 * TTL)
        _, lease = queue.lease_state("p0000", now=T0 + 2 * TTL)
        assert lease["worker"] == "bob"

    def test_reaper_moves_at_expiry_others_wait_grace(self, queue):
        queue.claim("p0000", "alice", now=T0)
        just_expired = T0 + TTL + 0.1
        assert queue.may_reap("p0000", "reaper", reaper="reaper", now=just_expired)
        assert not queue.may_reap("p0000", "bob", reaper="reaper", now=just_expired)
        # After the 2×TTL grace any worker may move (the reaper may be dead).
        late = T0 + 3 * TTL + 0.1
        assert queue.may_reap("p0000", "bob", reaper="reaper", now=late)

    def test_no_reaper_means_everyone_may_reap(self, queue):
        queue.claim("p0000", "alice", now=T0)
        assert queue.may_reap("p0000", "bob", reaper=None, now=T0 + TTL + 0.1)

    def test_live_lease_is_never_reapable(self, queue):
        queue.claim("p0000", "alice", now=T0)
        assert not queue.may_reap("p0000", "reaper", reaper="reaper", now=T0 + 1)


class TestCompletion:
    def test_first_done_marker_wins(self, queue):
        queue.mark_done("p0000", "alice", {"store_file": "a.json"})
        queue.mark_done("p0000", "bob", {"store_file": "a.json"})
        assert queue.done_record("p0000")["worker"] == "alice"
        assert queue.pending_shards() == ["p0001", "p0002"]

    def test_all_done(self, queue):
        for shard_id in queue.shard_ids():
            queue.mark_done(shard_id, "w", {})
        assert queue.all_done()

    def test_reap_done_leases(self, queue):
        queue.claim("p0000", "alice", now=T0)
        queue.mark_done("p0000", "alice", {})
        # Crash between mark_done and release leaves this lease behind.
        assert queue.reap_done_leases() == 1
        assert not (queue.leases_dir / "p0000.json").exists()


class TestWorkersAndStatus:
    def test_registration_and_liveness(self, queue):
        queue.register_worker("alice")
        queue.register_worker("bob")
        assert queue.registered_workers() == ["alice", "bob"]
        assert queue.live_workers() == ["alice", "bob"]
        # Liveness horizon is 3 TTLs past the registration heartbeat.
        import time

        assert queue.live_workers(now=time.time() + 4 * TTL) == []

    def test_status_snapshot(self, queue):
        queue.register_worker("alice")
        queue.claim("p0001", "alice", now=T0)
        queue.mark_done("p0000", "alice", {})
        status = queue.status(now=T0 + 1)
        assert status["shards"] == {
            "total": 3, "done": 1, "leased": 1, "pending": 2,
        }
        assert status["workers"]["registered"] == ["alice"]
        [lease] = status["leases"]
        assert (lease["shard"], lease["state"], lease["worker"]) == (
            "p0001", "live", "alice",
        )
        json.dumps(status)  # must be JSON-ready for `repro fabric status`
