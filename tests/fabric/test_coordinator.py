"""Coordination layer: LCR reaper election, strided assignment, collect."""

import pytest

from repro.fabric import (
    FabricQueue,
    IncompleteSweepError,
    collect,
    elect_reaper,
    execute_shard,
    fabric_status,
    shard_preference,
)


@pytest.fixture
def queue(tmp_path, make_scenario):
    q = FabricQueue(tmp_path / "job")
    q.create_job(make_scenario(), lease_ttl=5.0)
    return q


class TestElection:
    def test_no_workers_no_reaper(self, queue):
        assert elect_reaper(queue, []) is None

    def test_small_fleets_pick_highest_id(self, queue):
        assert elect_reaper(queue, ["alice"]) == "alice"
        assert elect_reaper(queue, ["bob", "alice"]) == "bob"

    def test_election_is_deterministic_and_order_free(self, queue):
        fleet = ["w-03", "w-01", "w-02", "w-04"]
        first = elect_reaper(queue, fleet)
        assert first in fleet
        # Every worker runs the election locally on its own view; the
        # result must not depend on enumeration order.
        assert elect_reaper(queue, list(reversed(fleet))) == first
        assert elect_reaper(queue, sorted(fleet)) == first

    def test_election_runs_real_lcr(self, queue, monkeypatch):
        # ≥3 workers must go through the registry's ring protocol, not a
        # shortcut: poison the registry lookup and watch it propagate.
        def boom():  # pragma: no cover - the call itself is the assertion
            raise AssertionError("election bypassed the registry")

        from repro.fabric import coordinator

        coordinator._ELECTION_MEMO.clear()
        monkeypatch.setattr(
            "repro.runtime.registry.default_registry", boom
        )
        with pytest.raises(AssertionError, match="bypassed"):
            elect_reaper(queue, ["a", "b", "c"])


class TestAssignment:
    def test_strided_ranges_are_disjoint_and_cover(self):
        shards = [f"p{i:04d}" for i in range(7)]
        fleet = ["a", "b", "c"]
        owned = []
        for rank, worker in enumerate(fleet):
            width = sum(1 for i in range(7) if i % 3 == rank)
            owned.extend(shard_preference(shards, worker, fleet)[:width])
        # Each worker's preferred range is its stride; together they tile
        # the grid exactly once.
        assert sorted(owned) == shards

    def test_every_worker_eventually_covers_everything(self):
        shards = [f"p{i:04d}" for i in range(5)]
        order = shard_preference(shards, "b", ["a", "b"])
        assert sorted(order) == shards

    def test_unknown_worker_gets_plain_order(self):
        shards = ["p0000", "p0001"]
        assert shard_preference(shards, "stranger", ["a", "b"]) == shards


class TestCollect:
    def test_collect_refuses_incomplete_sweep(self, queue):
        with pytest.raises(IncompleteSweepError, match="p0000"):
            collect(queue.root)

    def test_collect_assembles_and_reaps(self, queue, make_scenario):
        scenario = make_scenario()
        store = queue.store()
        for position, n in enumerate(scenario.sizes):
            store.save(scenario, n, position, execute_shard(scenario, position))
        queue.claim("p0000", "dead-worker")
        queue.mark_done("p0000", "dead-worker", {})
        run = collect(queue.root, meta={"executor": "fabric"})
        assert [ts.n for ts in run.trial_sets] == list(scenario.sizes)
        # Collect sweeps the crash-orphaned done lease.
        assert list(queue.leases_dir.glob("p*.json")) == []

    def test_status_includes_reaper(self, queue):
        queue.register_worker("alice")
        status = fabric_status(queue.root)
        assert status["reaper"] == "alice"
