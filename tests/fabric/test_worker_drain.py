"""Satellite: SIGTERM asks a worker to stop *politely*.

The drain contract: finish the trial in flight, abandon the rest of the
shard, release the lease immediately (no TTL wait), emit a
``worker_exit`` trace with ``drained`` set, exit 0.  Covered twice —
in-process with an explicit drain event, and end-to-end with a real
``SIGTERM`` against a forked worker process.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import threading
import time

import pytest

from repro.fabric import FabricQueue
from repro.fabric.worker import run_worker, worker_entry
from repro.telemetry.trace import validate_record


class TestDrainEvent:
    def test_preset_drain_exits_before_claiming(self, tmp_path, make_scenario):
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(make_scenario(), lease_ttl=5.0)
        drain = threading.Event()
        drain.set()
        summary = run_worker(tmp_path / "job", "pre-drained", drain=drain)
        assert summary["drained"] is True
        assert summary["completed"] == []
        assert summary["trials"] == 0
        # Nothing was claimed, so nothing needs releasing.
        assert list(queue.leases_dir.glob("p*.json")) == []

    def test_mid_shard_drain_releases_lease_immediately(
        self, tmp_path, make_scenario
    ):
        # One big shard the worker cannot finish before the drain lands.
        scenario = make_scenario(sizes=(16,), trials=5000)
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(scenario, lease_ttl=60.0)
        drain = threading.Event()
        summary: dict = {}

        def work() -> None:
            summary.update(
                run_worker(tmp_path / "job", "drain-me", drain=drain)
            )

        thread = threading.Thread(target=work)
        thread.start()
        # Drain as soon as the shard is actually leased.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if list(queue.leases_dir.glob("p*.json")):
                break
            time.sleep(0.005)
        drain.set()
        thread.join(timeout=60)
        assert not thread.is_alive()

        assert summary["drained"] is True
        # The lease is gone *now* — released on the way out, not left to
        # expire against its 60 s TTL.
        assert list(queue.leases_dir.glob("p*.json")) == []
        if not summary["completed"]:
            # The common case: the shard was abandoned mid-flight, so it
            # is still pending and nothing partial was saved.
            assert not queue.all_done()
            assert 0 < summary["trials"] < scenario.trials


@pytest.mark.skipif(sys.platform != "linux", reason="fork start method")
class TestSigterm:
    def test_sigterm_drains_worker_process(
        self, tmp_path, make_scenario, monkeypatch
    ):
        trace_path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace_path))
        scenario = make_scenario(sizes=(16,), trials=5000)
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(scenario, lease_ttl=60.0)

        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=worker_entry,
            args=(str(tmp_path / "job"), "sigterm-victim"),
            kwargs={"poll": 0.05},
        )
        process.start()
        try:
            # Wait until the worker is provably mid-shard: its enriched
            # heartbeat shows executed trials.
            record_path = queue.workers_dir / "sigterm-victim.json"
            deadline = time.monotonic() + 30
            started = False
            while time.monotonic() < deadline:
                try:
                    record = json.loads(record_path.read_text())
                    if record.get("counters", {}).get("trials_executed", 0) > 0:
                        started = True
                        break
                except (OSError, ValueError):
                    pass
                time.sleep(0.01)
            assert started, "worker never reported an executed trial"

            os.kill(process.pid, signal.SIGTERM)
            process.join(timeout=60)
        finally:
            if process.is_alive():
                process.kill()
                process.join(timeout=10)
        # A drained worker exits cleanly — not via the default SIGTERM
        # death (-15) a handler-less process would show.
        assert process.exitcode == 0

        # Lease released on exit, not left for TTL expiry.
        assert list(queue.leases_dir.glob("p*.json")) == []

        # The trace carries a schema-valid worker_exit with the drain bit.
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        for record in records:
            validate_record(record)
        exits = [r for r in records if r["event"] == "worker_exit"]
        assert len(exits) == 1
        assert exits[0]["drained"] is True
        assert exits[0]["worker"] == "sigterm-victim"
