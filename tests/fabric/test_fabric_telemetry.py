"""Fabric telemetry: enriched heartbeats, throughput rows, claim modes."""

from __future__ import annotations

import time

import pytest

from repro.fabric import FabricQueue, run_worker
from repro.fabric.queue import _atomic_write
from repro.fabric.worker import _claim_next
from repro.telemetry import reset_metrics


@pytest.fixture(autouse=True)
def _clean_registry():
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture
def queue(tmp_path, make_scenario):
    q = FabricQueue(tmp_path / "job")
    q.create_job(make_scenario())
    return q


class TestEnrichedHeartbeat:
    def test_counters_land_in_worker_record(self, queue):
        queue.register_worker("w0")
        queue.touch_worker("w0", counters={"trials_executed": 3})
        record = queue.worker_record("w0")
        assert record["counters"] == {"trials_executed": 3}
        assert record["heartbeat_at"] >= record["joined_at"]

    def test_plain_touch_keeps_worker_live(self, queue):
        queue.register_worker("w0")
        queue.touch_worker("w0")  # legacy mtime-only heartbeat
        assert "w0" in queue.live_workers()
        assert queue.worker_record("w0").get("counters") is None

    def test_enriched_touch_registers_missing_worker(self, queue):
        queue.touch_worker("ghost", counters={"trials_executed": 1})
        assert queue.worker_record("ghost")["counters"] == {
            "trials_executed": 1
        }


class TestWorkerDetail:
    def test_rates_derive_from_counters(self, queue):
        queue.register_worker("w0")
        # Backdate the join so the rate window is a known ~6 seconds.
        record = queue.worker_record("w0")
        record["joined_at"] = record["joined_at"] - 6.0
        _atomic_write(queue.workers_dir / "w0.json", record)
        queue.touch_worker(
            "w0", counters={"trials_executed": 10, "shards_completed": 2}
        )
        (row,) = queue.worker_detail()
        assert row["live"] is True
        assert row["trials_per_min"] == pytest.approx(100.0, rel=0.2)
        assert row["shards_per_min"] == pytest.approx(20.0, rel=0.2)

    def test_legacy_worker_reports_no_rates(self, queue):
        queue.register_worker("w0")
        (row,) = queue.worker_detail()
        assert row["counters"] is None
        assert row["trials_per_min"] is None

    def test_status_includes_detail(self, queue):
        queue.register_worker("w0")
        queue.touch_worker("w0", counters={"trials_executed": 1})
        status = queue.status()
        assert [r["worker"] for r in status["workers"]["detail"]] == ["w0"]


class TestClaimModes:
    def test_free_shard_claims_with_claim_mode(self, queue):
        queue.register_worker("w0")
        shard_id, mode = _claim_next(queue, "w0")
        assert mode == "claim"
        assert shard_id in queue.shard_ids()

    def test_expired_lease_steals_with_steal_mode(self, tmp_path, make_scenario):
        queue = FabricQueue(tmp_path / "job")
        # One shard only: w1's sole route to work is reaping w0's lease.
        queue.create_job(make_scenario(sizes=(8,)), lease_ttl=0.1)
        queue.register_worker("w0")
        queue.register_worker("w1")
        shard_id, _ = _claim_next(queue, "w0")
        time.sleep(0.4)  # let w0's lease expire without a heartbeat
        stolen = None
        deadline = time.time() + 5.0
        while stolen is None and time.time() < deadline:
            stolen = _claim_next(queue, "w1")
        assert stolen is not None
        stolen_id, mode = stolen
        assert (stolen_id, mode) == (shard_id, "steal")


class TestRunWorkerCounters:
    def test_summary_and_heartbeat_counters(self, tmp_path, make_scenario):
        queue = FabricQueue(tmp_path / "job")
        scenario = make_scenario()
        queue.create_job(scenario)
        summary = run_worker(queue.root, worker_id="solo")
        counters = summary["counters"]
        total_trials = len(scenario.sizes) * scenario.trials
        assert counters["trials_executed"] == total_trials
        assert counters["shards_claimed"] == len(scenario.sizes)
        assert counters["shards_completed"] == len(scenario.sizes)
        assert counters["shards_stolen"] == 0
        assert counters["execute_seconds"] > 0
        # The final enriched heartbeat published the same counters.
        assert queue.worker_record("solo")["counters"] == counters
        (row,) = queue.worker_detail()
        assert row["trials_per_min"] > 0
