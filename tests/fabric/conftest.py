"""Shared fixtures for the fabric test suite.

Every test here runs against a cheap star-search scenario (trials are
sub-millisecond) so the suite exercises real multi-process fleets, real
SIGKILLs, and real lease takeovers without noticeable wall-clock cost.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import Scenario, TopologySpec


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Never let a fabric test touch the repo's real result cache."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "default-cache"))


@pytest.fixture(autouse=True)
def _no_topology_cache_leak():
    """`sweep --no-cache` sets REPRO_NO_TOPOLOGY_CACHE process-wide.

    Restore the pre-test state by hand (monkeypatch.delenv in teardown
    would *record* the leaked value and faithfully restore the leak).
    """
    saved = os.environ.get("REPRO_NO_TOPOLOGY_CACHE")
    yield
    if saved is None:
        os.environ.pop("REPRO_NO_TOPOLOGY_CACHE", None)
    else:
        os.environ["REPRO_NO_TOPOLOGY_CACHE"] = saved


@pytest.fixture
def make_scenario():
    """Factory for cheap, deterministic sweep scenarios."""

    def factory(**overrides) -> Scenario:
        base = dict(
            name="fabric-test/star",
            protocol="search-star/classical",
            topology=TopologySpec("star"),
            sizes=(8, 12, 16),
            trials=2,
            seed=11,
        )
        base.update(overrides)
        return Scenario(**base)

    return factory
