"""The manifest wire format round-trips every scenario exactly."""

import json

import pytest

from repro.fabric import adversary_from_dict, scenario_from_dict, scenario_to_dict
from repro.fabric.serialize import SERIAL_VERSION
from repro.runtime.catalog import SCENARIOS
from repro.runtime.store import ResultStore


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_catalogue_scenario_round_trips(self, name):
        scenario = SCENARIOS[name]
        # Through real JSON text, exactly as the manifest stores it.
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(payload) == scenario

    @pytest.mark.parametrize(
        "name",
        ["ring-le-lossy/lcr", "wheel-le-adaptive/classical",
         "complete-le-eavesdrop/classical"],
    )
    def test_round_trip_preserves_store_keys(self, name, tmp_path):
        # The deserialized scenario must hit the same content-addressed
        # cache entries — this is what makes fabric shards idempotent.
        scenario = SCENARIOS[name]
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        store = ResultStore(tmp_path)
        for position, n in enumerate(scenario.sizes):
            assert store.path_for(rebuilt, n, position) == store.path_for(
                scenario, n, position
            )

    def test_adversary_none_round_trips(self):
        assert adversary_from_dict(None) is None

    def test_adversary_tuples_restored(self):
        scenario = SCENARIOS["ring-le-crash/hs"]
        rebuilt = adversary_from_dict(
            json.loads(json.dumps(scenario.adversary.key_dict()))
        )
        assert rebuilt == scenario.adversary
        assert isinstance(rebuilt.crashes, tuple)


class TestRefusals:
    def test_unknown_version_refused(self, make_scenario):
        payload = scenario_to_dict(make_scenario())
        payload["version"] = SERIAL_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            scenario_from_dict(payload)

    def test_missing_version_refused(self, make_scenario):
        payload = scenario_to_dict(make_scenario())
        del payload["version"]
        with pytest.raises(ValueError, match="version"):
            scenario_from_dict(payload)

    def test_non_scalar_param_refused(self, make_scenario):
        scenario = make_scenario(params=(("weights", [1, 2, 3]),))
        with pytest.raises(ValueError, match="non-JSON-scalar"):
            scenario_to_dict(scenario)
