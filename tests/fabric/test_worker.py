"""Worker-loop behaviour: exact RNG slices, dedup, resume, fault plans."""

import pytest

from repro.fabric import (
    FabricQueue,
    FaultPlan,
    collect,
    execute_shard,
    run_worker,
    shard_trial_rngs,
)
from repro.runtime import run_scenario


class TestRngDerivation:
    def test_shard_slices_match_runner_grid_order(self, make_scenario):
        # The worker must reproduce run_scenario's per-trial streams bit
        # for bit: each shard aggregates to the very TrialSet the
        # in-process runner computes for that grid position.
        scenario = make_scenario()
        baseline = run_scenario(scenario, jobs=1)
        for position in range(len(scenario.sizes)):
            assert (
                execute_shard(scenario, position)
                == baseline.trial_sets[position]
            )

    def test_slices_are_disjoint_and_ordered(self, make_scenario):
        # Concatenating every shard's slice reproduces the runner's flat
        # spawn sequence: same child at the same flat index, draw for draw.
        from repro.util.rng import RandomSource

        scenario = make_scenario()
        flat = []
        for position in range(len(scenario.sizes)):
            flat.extend(shard_trial_rngs(scenario, position))
        reference = RandomSource(scenario.seed).spawn_many(len(flat))
        assert len(flat) == len(scenario.sizes) * scenario.trials
        for sliced, direct in zip(flat, reference):
            assert sliced.generator.random() == direct.generator.random()


class TestWorkerLoop:
    def test_single_worker_completes_job(self, tmp_path, make_scenario):
        scenario = make_scenario()
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(scenario, lease_ttl=5.0)
        summary = run_worker(queue.root, worker_id="solo")
        assert summary["all_done"]
        assert sorted(summary["completed"]) == ["p0000", "p0001", "p0002"]
        assert summary["trials"] == len(scenario.sizes) * scenario.trials
        run = collect(queue.root)
        assert run.trial_sets == run_scenario(scenario, jobs=1).trial_sets
        # The crash-safety invariant: a finished job holds no leases.
        assert list(queue.leases_dir.glob("p*.json")) == []

    def test_cached_shard_is_marked_done_without_recompute(
        self, tmp_path, make_scenario
    ):
        scenario = make_scenario()
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(scenario, lease_ttl=5.0)
        # Pre-populate one shard's result (a previous fleet's work).
        store = queue.store()
        store.save(scenario, scenario.sizes[0], 0, execute_shard(scenario, 0))
        summary = run_worker(queue.root, worker_id="solo")
        assert summary["all_done"]
        # Only the two missing shards' trials were executed.
        assert summary["trials"] == 2 * scenario.trials

    def test_max_shards_stops_early(self, tmp_path, make_scenario):
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(make_scenario(), lease_ttl=5.0)
        summary = run_worker(queue.root, worker_id="solo", max_shards=1)
        assert len(summary["completed"]) == 1
        assert not summary["all_done"]

    def test_missing_job_is_loud(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no fabric job"):
            run_worker(tmp_path / "nope")

    def test_worker_survives_corrupting_its_own_lease(
        self, tmp_path, make_scenario
    ):
        # The corrupt-a-lease fault: a torn write over the worker's own
        # lease file must not stop the shard from completing.
        scenario = make_scenario()
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(scenario, lease_ttl=5.0)
        summary = run_worker(
            queue.root,
            worker_id="solo",
            fault_plan=FaultPlan(corrupt_lease_after_trials=1),
        )
        assert summary["all_done"]
        run = collect(queue.root)
        assert run.trial_sets == run_scenario(scenario, jobs=1).trial_sets
        assert list(queue.leases_dir.glob("p*.json")) == []

    def test_duplicate_execution_is_deduped_by_store(
        self, tmp_path, make_scenario
    ):
        # Two workers both executing every shard (no coordination at all)
        # still converge to one result set — leases are efficiency only.
        scenario = make_scenario()
        queue = FabricQueue(tmp_path / "job")
        queue.create_job(scenario, lease_ttl=5.0)
        store = queue.store()
        for position, n in enumerate(scenario.sizes):
            store.save(scenario, n, position, execute_shard(scenario, position))
        before = {
            p.name: p.read_bytes() for p in store.root.glob("*.json")
        }
        run_worker(queue.root, worker_id="dup")
        after = {p.name: p.read_bytes() for p in store.root.glob("*.json")}
        assert after == before
