"""Serial, process-pool, and fabric execution are indistinguishable.

The repo's standing invariant — aggregates are bit-identical for any
``jobs`` value — extends to the fabric: same :class:`TrialSet` tuples,
same content-addressed store files, whatever executes the grid.
"""

import pytest

from repro.runtime import ResultStore, run_scenario


def _store_files(store: ResultStore) -> dict:
    return {p.name: p.read_bytes() for p in store.root.glob("*.json")}


class TestExecutorParity:
    def test_serial_pool_fabric_identical(self, tmp_path, make_scenario):
        scenario = make_scenario()
        serial = run_scenario(scenario, jobs=1)
        pooled = run_scenario(scenario, jobs=2)
        fabric = run_scenario(
            scenario,
            jobs=2,
            executor="fabric",
            fabric_dir=tmp_path / "fabric",
            fabric_options={"lease_ttl": 5.0, "timeout": 120.0},
        )
        assert serial.trial_sets == pooled.trial_sets
        assert serial.trial_sets == fabric.trial_sets

    def test_store_contents_identical_across_executors(
        self, tmp_path, make_scenario
    ):
        scenario = make_scenario()
        stores = {
            "serial": ResultStore(tmp_path / "serial"),
            "pool": ResultStore(tmp_path / "pool"),
            "fabric": ResultStore(tmp_path / "fabric-store"),
        }
        run_scenario(scenario, jobs=1, store=stores["serial"])
        run_scenario(scenario, jobs=2, store=stores["pool"])
        run_scenario(
            scenario,
            jobs=2,
            store=stores["fabric"],
            executor="fabric",
            fabric_dir=tmp_path / "fabric",
            fabric_options={"lease_ttl": 5.0, "timeout": 120.0},
        )
        serial_files = _store_files(stores["serial"])
        assert serial_files  # one entry per grid position
        assert _store_files(stores["pool"]) == serial_files
        assert _store_files(stores["fabric"]) == serial_files

    def test_fabric_resumes_from_partial_store(self, tmp_path, make_scenario):
        # Warm the fabric store with a serial run of a prefix grid, then
        # sweep the full grid through the fabric: cached positions are
        # reused (the resume path), appended positions computed fresh.
        scenario = make_scenario(sizes=(8, 12, 16))
        prefix = scenario.with_overrides(sizes=(8, 12))
        store = ResultStore(tmp_path / "store")
        run_scenario(prefix, jobs=1, store=store)
        assert len(_store_files(store)) == 2
        fabric = run_scenario(
            scenario,
            jobs=2,
            store=store,
            executor="fabric",
            fabric_dir=tmp_path / "fabric",
            fabric_options={"lease_ttl": 5.0, "timeout": 120.0},
        )
        assert fabric.trial_sets == run_scenario(scenario, jobs=1).trial_sets
        assert len(_store_files(store)) == 3


class TestRunMeta:
    def test_pool_meta_records_resolution(self, make_scenario):
        run = run_scenario(make_scenario(), jobs=2)
        assert run.meta["executor"] == "pool"
        assert run.meta["jobs_requested"] == 2
        assert run.meta["jobs_resolved"] == 2

    def test_fabric_meta_records_fleet(self, tmp_path, make_scenario):
        run = run_scenario(
            make_scenario(),
            jobs=2,
            executor="fabric",
            fabric_dir=tmp_path / "fabric",
            fabric_options={"lease_ttl": 5.0, "timeout": 120.0},
        )
        assert run.meta["executor"] == "fabric"
        assert run.meta["fabric_dir"] == str(tmp_path / "fabric")
        assert run.meta["workers_spawned"] == 2
        assert run.meta["worker_respawns"] == 0
        assert run.meta["shards"] == 3

    def test_unknown_executor_refused(self, make_scenario):
        with pytest.raises(ValueError, match="executor"):
            run_scenario(make_scenario(), executor="carrier-pigeon")

    def test_fabric_requires_dir(self, make_scenario):
        with pytest.raises(ValueError, match="fabric_dir"):
            run_scenario(make_scenario(), executor="fabric")
